"""Misprediction regret audit over recorded decision traces.

Joins each trace's outcome against the optimizer ground truth it
carries (every :class:`~repro.core.framework.ExecutionRecord` labels
the optimal plan for accounting) and attributes the suboptimality of
each wrong answer to the pipeline stage that caused it:

``fallback:<source>``
    The resilience chain served the plan — the predictor never got a
    say (optimizer outage, breaker open).
``density_lookup``
    No transform's histogram vote matched the optimal plan: the
    synopsis held no useful density at this point (sparse region,
    stale after drift).
``median_vote``
    Some transforms voted for the optimal plan but the median/argmax
    aggregation was outvoted — an LSH collision problem (paper §4.2's
    motivation for taking the median over ``t`` transforms).
``confidence_check``
    A majority of transforms agreed with the optimal plan yet the
    served plan still differed — the chord-model confidence
    (``sin θ`` vs γ) admitted a wrong winner or the noise filter
    intervened.

Regret is ``suboptimality - 1`` (excess cost over optimal, as a
fraction); ``undetected`` counts wrong answers the pipeline did not
catch via negative feedback — the silent mispredictions Kepler-style
auditing exists to surface.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from repro.obs.tracing import DecisionTrace, trace_to_dict

__all__ = ["attribute_stage", "regret_audit"]


def _as_dict(trace: "DecisionTrace | Mapping[str, Any]") -> dict[str, Any]:
    if isinstance(trace, DecisionTrace):
        return trace_to_dict(trace)
    return dict(trace)


def _iter_spans(span: Mapping[str, Any]) -> Iterable[Mapping[str, Any]]:
    for child in span.get("children", ()):
        yield child
        yield from _iter_spans(child)


def attribute_stage(trace: "DecisionTrace | Mapping[str, Any]") -> str | None:
    """Name the pipeline stage responsible for a suboptimal decision.

    Returns None for optimal (or outcome-less) traces; otherwise one of
    ``fallback:<source>``, ``density_lookup``, ``median_vote``,
    ``confidence_check``, or ``unknown`` when the trace carries no
    transform spans to inspect (e.g. sampled with tracing of the
    predictor disabled).
    """
    payload = _as_dict(trace)
    outcome = payload.get("outcome") or {}
    if not outcome or outcome.get("error"):
        return None
    executed = outcome.get("executed_plan")
    optimal = outcome.get("optimal_plan")
    # Blame only decisions that *cost* something: a wrong prediction
    # corrected by an optimizer invocation executed optimally and
    # carries no regret.
    if executed is None or optimal is None or executed == optimal:
        return None
    source = outcome.get("fallback_source")
    if source:
        return f"fallback:{source}"
    votes: list[Any] = []
    for span in _iter_spans(payload.get("root", {})):
        if span.get("name") == "transform":
            votes.append(span.get("attributes", {}).get("vote"))
    if not votes:
        return "unknown"
    correct_votes = sum(1 for vote in votes if vote == optimal)
    if correct_votes == 0:
        return "density_lookup"
    if correct_votes * 2 < len(votes):
        return "median_vote"
    return "confidence_check"


def regret_audit(
    traces: Iterable["DecisionTrace | Mapping[str, Any]"],
) -> dict[str, Any]:
    """Aggregate per-stage regret over a set of decision traces.

    Returns ``{"instances", "suboptimal", "total_regret", "stages"}``
    where ``stages`` maps each blamed stage to its count, total regret
    (sum of ``suboptimality - 1``), mean/max suboptimality, and how
    many of its mispredictions went undetected (served without
    triggering negative feedback).
    """
    instances = 0
    suboptimal = 0
    total_regret = 0.0
    stages: dict[str, dict[str, Any]] = {}
    for trace in traces:
        payload = _as_dict(trace)
        outcome = payload.get("outcome") or {}
        if not outcome or outcome.get("error"):
            continue
        instances += 1
        stage = attribute_stage(payload)
        if stage is None:
            continue
        suboptimal += 1
        ratio = float(outcome.get("suboptimality", 1.0))
        regret = max(0.0, ratio - 1.0)
        total_regret += regret
        bucket = stages.setdefault(
            stage,
            {
                "count": 0,
                "total_regret": 0.0,
                "mean_suboptimality": 0.0,
                "max_suboptimality": 1.0,
                "undetected": 0,
            },
        )
        bucket["count"] += 1
        bucket["total_regret"] += regret
        bucket["max_suboptimality"] = max(bucket["max_suboptimality"], ratio)
        # Running mean keeps a single pass over arbitrarily many traces.
        bucket["mean_suboptimality"] += (ratio - bucket["mean_suboptimality"]) / bucket["count"]
        if outcome.get("invocation_reason") != "negative_feedback":
            bucket["undetected"] += 1
    return {
        "instances": instances,
        "suboptimal": suboptimal,
        "total_regret": total_regret,
        "stages": stages,
    }
