"""Physical plan wrapper: identity, evaluation and rendering.

A :class:`PhysicalPlan` is what the PPC framework caches and predicts.
Plan identity is *structural*: two plans are the same iff their
operator trees (methods, access paths, sort enforcers, join order)
match, which the fingerprint string captures.  This mirrors the paper's
"plan identifier" used to cluster plan-space points.
"""

from __future__ import annotations

import numpy as np

from repro.optimizer.operators import PlanNode


class PhysicalPlan:
    """An immutable executable plan with structural identity."""

    def __init__(self, root: PlanNode) -> None:
        self.root = root
        self.fingerprint = root.fingerprint()

    def evaluate(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Output cardinality and cost at each selectivity point."""
        return self.root.evaluate(x)

    def cost(self, x: np.ndarray) -> np.ndarray:
        """Estimated execution cost at each selectivity point."""
        __, cost = self.root.evaluate(x)
        return cost

    def describe(self) -> str:
        """Readable multi-line rendering of the operator tree."""
        return self.root.describe()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PhysicalPlan):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    def __repr__(self) -> str:
        return f"PhysicalPlan({self.fingerprint})"
