"""Registry, suite runner plumbing, committed baselines, CLI gate."""

import json
import pathlib

import pytest

from repro.bench.history import append_run, load_history
from repro.bench.runners import (
    BENCHES,
    SUITES,
    load_baselines,
    run_suite,
    snapshot_path,
)
from repro.bench.schema import load_envelope, make_envelope, metric
from repro.cli import main as cli_main
from repro.exceptions import BenchError

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"


class TestRegistry:
    def test_ci_suite_is_a_subset_of_full(self):
        assert set(SUITES["ci"]) <= set(SUITES["full"])
        assert set(SUITES["full"]) == set(BENCHES)

    def test_every_bench_has_a_committed_baseline(self):
        for name in BENCHES:
            assert snapshot_path(RESULTS_DIR, name).exists(), name

    def test_unknown_bench_rejected(self, tmp_path):
        with pytest.raises(BenchError, match="unknown bench"):
            run_suite(["nope"], tmp_path)


class TestCommittedBaselines:
    def test_all_snapshots_are_valid_schema_v2(self):
        # The acceptance criterion: every committed BENCH_*.json in the
        # repo validates against the schema, not just the registered set.
        snapshots = sorted(RESULTS_DIR.glob("BENCH_*.json"))
        assert len(snapshots) >= 5
        for path in snapshots:
            envelope = load_envelope(path)
            assert envelope["metrics"], path.name

    def test_load_baselines_maps_bench_names(self):
        baselines = load_baselines(RESULTS_DIR, list(BENCHES))
        assert set(baselines) == set(BENCHES)
        for name, envelope in baselines.items():
            assert envelope["bench"] == name

    def test_history_journal_has_a_trajectory(self):
        entries = load_history(RESULTS_DIR / "history.jsonl")
        run_ids = {entry["run_id"] for entry in entries}
        assert len(run_ids) >= 2, "history.jsonl should hold >= 2 runs"
        assert {entry["bench"] for entry in entries} >= set(BENCHES)


def _seed_rig(results_dir, current_value, baseline_value=100.0):
    """A fake journal + committed baseline for one registered bench."""
    bench = "predict_throughput"  # registered; snapshot name "predict"

    def envelope(value):
        return make_envelope(
            bench,
            metrics={
                "batch_us_per_instance": metric(
                    value, "us/instance", "lower", tolerance_pct=10.0
                )
            },
        )

    results_dir.mkdir(parents=True, exist_ok=True)
    snapshot_path(results_dir, bench).write_text(
        json.dumps(envelope(baseline_value), sort_keys=True)
    )
    append_run(
        results_dir / "history.jsonl", {bench: envelope(current_value)}
    )


class TestCompareCLI:
    def test_unchanged_run_exits_zero(self, tmp_path, capsys):
        _seed_rig(tmp_path, current_value=100.0)
        code = cli_main(["bench", "compare", "--results-dir", str(tmp_path)])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_regression_exits_one(self, tmp_path, capsys):
        # >=20% injected slowdown against a 10% tolerance: exit 1.
        _seed_rig(tmp_path, current_value=125.0)
        code = cli_main(["bench", "compare", "--results-dir", str(tmp_path)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_empty_history_exits_one(self, tmp_path, capsys):
        code = cli_main(["bench", "compare", "--results-dir", str(tmp_path)])
        assert code == 1
        assert "empty" in capsys.readouterr().err

    def test_history_prints_trajectory(self, tmp_path, capsys):
        _seed_rig(tmp_path, current_value=100.0)
        append_run(
            tmp_path / "history.jsonl",
            {
                "predict_throughput": make_envelope(
                    "predict_throughput",
                    metrics={
                        "batch_us_per_instance": metric(
                            110.0, "us/instance", "lower", tolerance_pct=10.0
                        )
                    },
                )
            },
        )
        code = cli_main(["bench", "history", "--results-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "predict_throughput.batch_us_per_instance" in out
        assert "100 -> 110" in out

    def test_history_on_missing_journal_is_benign(self, tmp_path, capsys):
        code = cli_main(["bench", "history", "--results-dir", str(tmp_path)])
        assert code == 0
        assert "no bench history" in capsys.readouterr().out
