"""The whole-program rules RPR101–RPR105.

Each rule is a query over an analyzed :class:`~repro.analysis.effects
.engine.Project` and yields :class:`~repro.analysis.core.Finding`
records whose message carries a *witness*: the exact call chain from
the rule's root to the offending site, so a violation three helpers
deep reads as a path, not a location.  Findings respect ``# repro:
noqa[RPR10x]`` on any physical line of the offending statement — the
explicit stub-annotation escape hatch for behavior that is deliberate
(e.g. the documented ``ValueError`` shape contract of the batch
validators).

DESIGN.md §6.2 maps each rule to the design invariant it proves.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.analysis.core import Finding
from repro.analysis.effects.engine import (
    FunctionInfo,
    Project,
    build_project,
    build_project_from_sources,
)

#: The observability modules DESIGN §9 declares strictly read-only.
PURE_OBS_MODULES = (
    "repro.obs.quality",
    "repro.obs.timeseries",
    "repro.obs.audit",
    "repro.obs.slo",
)

#: Effects that break the read-only/deterministic claim of RPR101.
_IMPURE = ("rng", "clock", "fs", "net", "mutates_shared")

#: Hot-path roots of RPR102: the session execute paths plus every
#: batch-predict primitive in the core package.
_HOT_ROOT_METHODS = (
    "repro.core.framework.TemplateSession.execute",
    "repro.core.framework.TemplateSession.execute_batch",
)

#: Modules whose *clock* use is injected by construction (mirrors the
#: per-file RPR002 exemption: the clock sources and the simulator).
_CLOCK_EXEMPT = ("repro.resilience", "repro.simulation")

#: Synopsis state of the PR 6 batch-invalidation contract: mutating
#: any of these must bump ``_mutations``.
SYNOPSIS_MODULES = (
    "repro.core.histogram_predictor",
    "repro.core.lsh_predictor",
)
SYNOPSIS_ATTRS = frozenset(
    {"_histograms", "_counts", "_cost_sums", "total_points", "total_mass"}
)
_MUTATION_COUNTER = "_mutations"

#: The per-class lifecycle emission helper RPR105 requires mutating
#: entries to reach (``repro.obs.events`` journal discipline).
_EMIT_METHOD = "_emit_event"

#: Public-API packages whose escaping exceptions must be documented
#: ``repro.exceptions`` types (RPR104).
PUBLIC_API_MODULES = ("repro.service", "repro.core", "repro.resilience")

#: Non-repro exceptions allowed to escape: programmer-contract
#: signals, not runtime failures.
_ALLOWED_ESCAPES = frozenset({"NotImplementedError"})


class EffectRule:
    """Base class for one whole-program check."""

    code = "RPR100"
    title = ""
    severity = "error"
    rationale = ""
    scope = ""

    def check(self, project: Project) -> "Iterator[Finding]":
        raise NotImplementedError


def _module_in(module: str, prefixes: "tuple[str, ...]") -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def _make_finding(
    project: Project,
    rule: "EffectRule",
    info: FunctionInfo,
    lineno: int,
    end_lineno: int,
    message: str,
) -> "Finding | None":
    if project.suppressed(info, rule.code, lineno, end_lineno):
        return None
    ctx = project.modules[info.module].ctx
    return Finding(
        rule=rule.code,
        severity=rule.severity,
        path=info.path,
        line=lineno,
        col=1,
        message=message,
        snippet=ctx.line_text(lineno),
    )


def _effect_findings(
    project: Project,
    rule: "EffectRule",
    roots: "list[str]",
    effects: "tuple[str, ...]",
    describe: str,
    exempt_sink: "tuple[str, ...]" = (),
) -> "Iterator[Finding]":
    """Shared shape of RPR101/RPR102: walk the closure of ``roots``,
    anchor one finding per (sink function, effect) at the local effect
    site, witness the chain back to the root."""
    parents = project.reachable(roots)
    seen: set = set()
    for qualname in parents:
        info = project.functions[qualname]
        for site in info.effect_sites:
            if site.effect not in effects:
                continue
            if site.effect == "clock" and _module_in(
                info.module, exempt_sink
            ):
                continue
            key = (qualname, site.effect, site.lineno)
            if key in seen:
                continue
            seen.add(key)
            chain = project.witness(parents, qualname)
            finding = _make_finding(
                project,
                rule,
                info,
                site.lineno,
                site.end_lineno,
                f"{describe}: {site.detail} has effect "
                f"'{site.effect}'; call chain: {chain}",
            )
            if finding is not None:
                yield finding


class ObsLayerPurity(EffectRule):
    """RPR101: the telemetry read path is transitively pure.

    DESIGN §9 sells ``repro.obs.quality``/``timeseries``/``audit``/
    ``slo`` as strictly read-only, RNG-free and clock-free — the
    scorecard may be computed mid-run without perturbing a single
    decision.  This proves it interprocedurally: no function in those
    modules may reach unseeded RNG, a raw clock, I/O, or a write to
    state it does not own, no matter how many helpers deep.
    """

    code = "RPR101"
    title = "observability read path reaches an impure effect"
    rationale = (
        "keep the quality/timeseries/audit/slo modules free of RNG, "
        "raw clocks, I/O and shared-state writes; inject what varies"
    )
    scope = ", ".join(PURE_OBS_MODULES)

    def check(self, project: Project) -> "Iterator[Finding]":
        roots = [
            info.qualname
            for info in project.functions_in(*PURE_OBS_MODULES)
        ]
        yield from _effect_findings(
            project,
            self,
            roots,
            _IMPURE,
            "impure effect reachable from the observability layer",
        )


class PredictPathDeterminism(EffectRule):
    """RPR102: the interprocedural closure of RPR001/RPR002.

    No path from ``TemplateSession.execute``/``execute_batch`` or any
    core ``predict_batch`` primitive may reach unseeded RNG or the raw
    wall clock.  The injected aliases (``system_clock``/
    ``system_sleep``) are effect-free by stub, and the clock half
    exempts ``repro.resilience``/``repro.simulation`` sinks exactly as
    the per-file rule does.
    """

    code = "RPR102"
    title = "predict path reaches unseeded RNG or the raw wall clock"
    rationale = (
        "thread seeded Generators and the injected clock through every "
        "helper the predict path calls"
    )
    scope = "closure of TemplateSession.execute/execute_batch, predict_batch"

    def check(self, project: Project) -> "Iterator[Finding]":
        roots = [
            qualname
            for qualname in _HOT_ROOT_METHODS
            if qualname in project.functions
        ]
        roots += [
            info.qualname
            for info in project.functions_in("repro.core")
            if info.name == "predict_batch"
        ]
        yield from _effect_findings(
            project,
            self,
            roots,
            ("rng", "clock"),
            "non-deterministic effect on the predict path",
            exempt_sink=_CLOCK_EXEMPT,
        )


class MutationDiscipline(EffectRule):
    """RPR103: every synopsis mutation bumps ``mutation_count``.

    ``TemplateSession.execute_batch`` prefetches predictions and
    invalidates the prefetched tail by comparing
    ``online.mutation_count`` across instances (the PR 6 contract).
    That only works if *every* runtime method that mutates the LSH /
    histogram synopsis arrays bumps ``_mutations`` — a silent mutator
    would serve stale prefetched predictions.  ``__init__`` and
    helpers reachable only from it are exempt: construction precedes
    any prefetch.
    """

    code = "RPR103"
    title = "synopsis mutation without a mutation_count bump"
    rationale = (
        "bump self._mutations in every runtime method that mutates "
        "the synopsis arrays (or call one that does)"
    )
    scope = ", ".join(SYNOPSIS_MODULES)

    def check(self, project: Project) -> "Iterator[Finding]":
        for cls_qualname, cls in sorted(project.classes.items()):
            if not _module_in(cls.module, SYNOPSIS_MODULES):
                continue
            methods = {
                name: project.functions[f"{cls_qualname}.{name}"]
                for name in cls.methods
                if f"{cls_qualname}.{name}" in project.functions
            }
            edges = {
                name: {
                    site.resolved.rsplit(".", 1)[-1]
                    for site in info.calls
                    if site.resolved is not None
                    and site.resolved.startswith(cls_qualname + ".")
                }
                for name, info in methods.items()
            }
            local_attrs = {
                name: (info.self_writes | info.self_mutated)
                & SYNOPSIS_ATTRS
                for name, info in methods.items()
            }
            mutates = self._closure(
                methods, edges, lambda info: bool(
                    local_attrs[info.name]
                )
            )
            bumps = self._closure(
                methods,
                edges,
                lambda info: _MUTATION_COUNTER in info.self_writes,
            )
            # The contract is per runtime *entry path*: every public
            # non-constructor method whose call closure mutates the
            # synopsis must bump (itself or via a callee).  A private
            # helper may mutate bump-free as long as every entry
            # reaching it bumps.
            entries = [
                name
                for name, info in sorted(methods.items())
                if info.is_public and name != "__init__"
            ]
            for name in entries:
                if name not in mutates or name in bumps:
                    continue
                info = methods[name]
                chain, attrs = self._mutation_witness(
                    name, edges, local_attrs
                )
                finding = _make_finding(
                    project,
                    self,
                    info,
                    info.lineno,
                    info.lineno,
                    f"{cls.name}.{name} mutates synopsis state "
                    f"({', '.join(sorted(attrs))}) without bumping "
                    f"{_MUTATION_COUNTER}; mutation chain: {chain}",
                )
                if finding is not None:
                    yield finding

    @staticmethod
    def _closure(methods: dict, edges: dict, predicate) -> set:
        satisfied = {
            name for name, info in methods.items() if predicate(info)
        }
        changed = True
        while changed:
            changed = False
            for name in methods:
                if name in satisfied:
                    continue
                if edges.get(name, set()) & satisfied:
                    satisfied.add(name)
                    changed = True
        return satisfied

    @staticmethod
    def _mutation_witness(
        entry: str, edges: dict, local_attrs: "dict[str, set]"
    ) -> "tuple[str, set]":
        """Shortest chain from ``entry`` to a locally-mutating method,
        plus the attrs mutated at the chain's end."""
        parents: dict = {entry: None}
        queue = [entry]
        while queue:
            current = queue.pop(0)
            if local_attrs.get(current):
                chain = []
                node: "str | None" = current
                while node is not None:
                    chain.append(node)
                    node = parents[node]
                return " -> ".join(reversed(chain)), local_attrs[current]
            for callee in edges.get(current, ()):
                if callee in local_attrs and callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return entry, set()


class LifecycleEventCoverage(EffectRule):
    """RPR105: every synopsis mutation journals a lifecycle event.

    The lineage engine (``repro.obs.lineage``) reconstructs cache state
    purely from the event journal, so its conclusions are only as
    complete as the emission coverage: a public predictor method that
    bumps ``_mutations`` without reaching the class's ``_emit_event``
    helper mutates the learned state invisibly — ``repro lineage why``
    would answer from a journal with a hole in it.  Same per-entry
    closure discipline as RPR103: the entry may emit itself or via a
    callee, and ``__init__``-only construction paths are exempt (the
    journal is bound after construction, so pool replay is deliberately
    unjournaled).
    """

    code = "RPR105"
    title = "synopsis mutation without a lifecycle event emission"
    rationale = (
        "journal every runtime synopsis mutation: call self._emit_event "
        "(repro.obs.events) on each public path that bumps _mutations"
    )
    scope = ", ".join(SYNOPSIS_MODULES)

    def check(self, project: Project) -> "Iterator[Finding]":
        for cls_qualname, cls in sorted(project.classes.items()):
            if not _module_in(cls.module, SYNOPSIS_MODULES):
                continue
            methods = {
                name: project.functions[f"{cls_qualname}.{name}"]
                for name in cls.methods
                if f"{cls_qualname}.{name}" in project.functions
            }
            edges = {
                name: {
                    site.resolved.rsplit(".", 1)[-1]
                    for site in info.calls
                    if site.resolved is not None
                    and site.resolved.startswith(cls_qualname + ".")
                }
                for name, info in methods.items()
            }
            bumps = MutationDiscipline._closure(
                methods,
                edges,
                lambda info: _MUTATION_COUNTER in info.self_writes,
            )
            emits = MutationDiscipline._closure(
                methods, edges, lambda info: info.name == _EMIT_METHOD
            )
            bump_attrs = {
                name: (
                    {_MUTATION_COUNTER}
                    if _MUTATION_COUNTER in info.self_writes
                    else set()
                )
                for name, info in methods.items()
            }
            entries = [
                name
                for name, info in sorted(methods.items())
                if info.is_public and name != "__init__"
            ]
            for name in entries:
                if name not in bumps or name in emits:
                    continue
                info = methods[name]
                chain, __ = MutationDiscipline._mutation_witness(
                    name, edges, bump_attrs
                )
                finding = _make_finding(
                    project,
                    self,
                    info,
                    info.lineno,
                    info.lineno,
                    f"{cls.name}.{name} bumps {_MUTATION_COUNTER} "
                    f"without journaling a lifecycle event (no "
                    f"{_EMIT_METHOD} on the path); mutation chain: "
                    f"{chain}",
                )
                if finding is not None:
                    yield finding


class DocumentedPublicExceptions(EffectRule):
    """RPR104: the public API raises documented ``repro.exceptions``.

    README promises adopters one ``except ReproError`` catches every
    deliberate library failure.  This walks the closure of every
    public function in ``repro.service``/``core``/``resilience`` and
    flags any exception that can escape it without being a project
    exception type — accounting for the ``try``/``except`` masks on
    each call path.  ``NotImplementedError`` (abstract contracts) is
    allowed; dynamic re-raises are out of scope.
    """

    code = "RPR104"
    title = "undocumented exception escapes the public API"
    rationale = (
        "raise a repro.exceptions type (or catch-and-wrap) on every "
        "path reachable from the public surface"
    )
    scope = ", ".join(PUBLIC_API_MODULES)

    def check(self, project: Project) -> "Iterator[Finding]":
        roots = [
            info.qualname
            for info in project.functions_in(*PUBLIC_API_MODULES)
            if info.is_public
        ]
        seen: set = set()
        for root in sorted(roots):
            summary = project.functions[root].raises
            bad = {
                name
                for name in summary
                if name not in project.repro_exceptions
                and name not in _ALLOWED_ESCAPES
            }
            for name in sorted(bad):
                parents = project.raise_reachable([root], name)
                for qualname in parents:
                    info = project.functions[qualname]
                    for site in info.raise_sites:
                        if site.name != name or site.catches_all:
                            continue
                        if name in project.expand_caught(site.caught):
                            continue
                        key = (qualname, name, site.lineno)
                        if key in seen:
                            continue
                        seen.add(key)
                        chain = project.witness(parents, qualname)
                        finding = _make_finding(
                            project,
                            self,
                            info,
                            site.lineno,
                            site.end_lineno,
                            f"'{name}' escapes public API root "
                            f"{project.functions[root].display}; raise "
                            "a repro.exceptions type instead; call "
                            f"chain: {chain}",
                        )
                        if finding is not None:
                            yield finding


def effect_rules() -> "list[EffectRule]":
    """Fresh instances of the whole-program rules, code order."""
    return [
        ObsLayerPurity(),
        PredictPathDeterminism(),
        MutationDiscipline(),
        DocumentedPublicExceptions(),
        LifecycleEventCoverage(),
    ]


def run_effect_rules(
    project: Project, rules: "Iterable[EffectRule] | None" = None
) -> "list[Finding]":
    active = list(rules) if rules is not None else effect_rules()
    findings: "list[Finding]" = []
    for rule in active:
        findings.extend(rule.check(project))
    # One finding per fingerprintable site even when several roots
    # reach it (execute and execute_batch share most of the closure).
    unique: "dict[tuple, Finding]" = {}
    for finding in findings:
        key = (finding.rule, finding.path, finding.line, finding.message)
        unique.setdefault(key, finding)
    result = list(unique.values())
    result.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result


def analyze_paths(paths: "Iterable") -> "tuple[list[Finding], Project]":
    """Whole-program analysis of files/directories: ``(findings,
    project)`` — the project is kept for ``--graph-out``."""
    project = build_project(paths)
    return run_effect_rules(project), project


def analyze_sources(
    sources: "dict[str, str]",
) -> "tuple[list[Finding], Project]":
    """In-memory twin of :func:`analyze_paths` for tests/selftests."""
    project = build_project_from_sources(sources)
    return run_effect_rules(project), project


__all__ = [
    "EffectRule",
    "PUBLIC_API_MODULES",
    "PURE_OBS_MODULES",
    "SYNOPSIS_ATTRS",
    "SYNOPSIS_MODULES",
    "analyze_paths",
    "analyze_sources",
    "effect_rules",
    "run_effect_rules",
]
