"""Build identity: package version + source commit.

Shared by the ``ppc_build_info`` gauge (so every scrape says exactly
what code is serving) and by the bench harness's env fingerprint (so a
regression in ``history.jsonl`` points at the commit that caused it).

Commit detection never shells out: ``$REPRO_COMMIT`` wins (CI sets it
from the checkout SHA), otherwise the enclosing checkout's
``.git/HEAD`` is parsed directly (symbolic ref → loose ref file →
``packed-refs``); installed outside a checkout the answer is
``"unknown"``.  All filesystem errors degrade to ``"unknown"`` — this
must never take down a metrics scrape.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["VERSION", "commit_id"]

#: Package version (mirrors ``pyproject.toml``; the package is used
#: from a source tree via PYTHONPATH, so importlib.metadata has no
#: distribution to ask).
VERSION = "1.0.0"


def _read_git_head(repo_root: Path) -> "str | None":
    try:
        content = (repo_root / ".git" / "HEAD").read_text().strip()
    except OSError:
        return None
    if not content.startswith("ref:"):
        return content[:40] or None
    ref = content.split(None, 1)[1].strip()
    try:
        return (repo_root / ".git" / ref).read_text().strip()[:40] or None
    except OSError:
        pass
    try:
        packed = (repo_root / ".git" / "packed-refs").read_text()
    except OSError:
        return None
    for line in packed.splitlines():
        parts = line.split()
        if len(parts) == 2 and parts[1] == ref:
            return parts[0][:40]
    return None


def commit_id() -> str:
    """The source commit serving this process (or ``"unknown"``)."""
    env = os.environ.get("REPRO_COMMIT")
    if env:
        return env
    repo_root = Path(__file__).resolve().parents[2]
    return _read_git_head(repo_root) or "unknown"
