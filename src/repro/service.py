"""End-to-end plan-caching service: the adopter-facing facade.

Everything below this module works in normalized plan-space
coordinates; real applications submit *query instances* with actual
parameter values.  :class:`PlanCachingService` closes that gap: it owns
the catalog, the statistics, one plan-space oracle + PPC session per
registered template, and the binders that map parameter values to
plan-space points — so the caller's entire API surface is
``register(template)`` and ``execute(instance)``.

    service = PlanCachingService.tpch(seed=0)
    service.register("Q1")
    record = service.execute(QueryInstance("Q1", (1480.0, 103_000.0)))
    record.executed_plan, record.optimizer_invoked

An optional memory budget applies the multi-template governor across
all registered templates.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from repro.config import PPCConfig
from repro.core.framework import ExecutionRecord, PPCFramework
from repro.obs.tracing import DecisionTrace
from repro.exceptions import ConfigurationError, WorkloadError
from repro.obs import names as metric_names, render_prometheus
from repro.obs.quality import compute_scorecard
from repro.optimizer.catalog import Catalog
from repro.optimizer.expressions import QueryTemplate
from repro.optimizer.plan_space import PlanSpace
from repro.optimizer.statistics import CatalogStatistics
from repro.resilience.breaker import BREAKER_STATES
from repro.resilience.faults import FaultInjector
from repro.tpch import build_catalog, build_statistics, query_template
from repro.workload.template import QueryInstance, TemplateBinder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.lineage import LineageEngine


class PlanCachingService:
    """Value-level plan caching over a catalog with statistics."""

    def __init__(
        self,
        catalog: Catalog,
        statistics: CatalogStatistics,
        config: "PPCConfig | None" = None,
        memory_budget_bytes: "int | None" = None,
        seed: int = 0,
        fault_injector: "FaultInjector | None" = None,
        clock: "Callable[[], float] | None" = None,
        sleep: "Callable[[float], None] | None" = None,
    ) -> None:
        if statistics.catalog is not catalog:
            raise ConfigurationError(
                "statistics must be built over the same catalog"
            )
        self.catalog = catalog
        self.statistics = statistics
        self.framework = PPCFramework(
            config,
            seed=seed,
            memory_budget_bytes=memory_budget_bytes,
            fault_injector=fault_injector,
            clock=clock,
            sleep=sleep,
        )
        self._binders: dict[str, TemplateBinder] = {}
        self._seed = seed

    @classmethod
    def tpch(
        cls,
        scale_factor: float = 1.0,
        config: "PPCConfig | None" = None,
        memory_budget_bytes: "int | None" = None,
        seed: int = 0,
        fault_injector: "FaultInjector | None" = None,
        clock: "Callable[[], float] | None" = None,
        sleep: "Callable[[float], None] | None" = None,
    ) -> "PlanCachingService":
        """A service over the modified TPC-H catalog of Appendix A."""
        catalog = build_catalog(scale_factor)
        statistics = build_statistics(catalog, seed=seed)
        return cls(
            catalog,
            statistics,
            config=config,
            memory_budget_bytes=memory_budget_bytes,
            seed=seed,
            fault_injector=fault_injector,
            clock=clock,
            sleep=sleep,
        )

    # ------------------------------------------------------------------
    # Template lifecycle
    # ------------------------------------------------------------------
    def register(
        self, template: "QueryTemplate | str"
    ) -> None:
        """Start plan caching for a template (name = a TPC-H Q0-Q8)."""
        if isinstance(template, str):
            template = query_template(template)
        if template.name in self._binders:
            raise ConfigurationError(
                f"template {template.name!r} already registered"
            )
        plan_space = PlanSpace(template, self.catalog, seed=self._seed)
        self.framework.register(plan_space)
        self._binders[template.name] = TemplateBinder(
            template, self.statistics
        )

    @property
    def templates(self) -> list[str]:
        return list(self._binders)

    # ------------------------------------------------------------------
    # The adopter-facing call
    # ------------------------------------------------------------------
    def execute(self, instance: QueryInstance) -> ExecutionRecord:
        """Run one query instance through the PPC workflow."""
        binder = self._binders.get(instance.template_name)
        if binder is None:
            raise WorkloadError(
                f"template {instance.template_name!r} is not registered"
            )
        point = binder.to_point(instance)
        return self.framework.execute(instance.template_name, point)

    def execute_batch(
        self, instances: "list[QueryInstance]"
    ) -> list[ExecutionRecord]:
        """Run a sequence of query instances through the batch hot path.

        Consecutive same-template runs are grouped and handed to the
        framework's vectorized ``execute_batch``; records come back in
        submission order and are lockstep-identical to calling
        :meth:`execute` per instance.
        """
        records: list[ExecutionRecord] = []
        start = 0
        while start < len(instances):
            name = instances[start].template_name
            binder = self._binders.get(name)
            if binder is None:
                raise WorkloadError(
                    f"template {name!r} is not registered"
                )
            stop = start
            while (
                stop < len(instances)
                and instances[stop].template_name == name
            ):
                stop += 1
            points = np.array(
                [
                    binder.to_point(instances[i])
                    for i in range(start, stop)
                ],
                dtype=float,
            )
            records.extend(self.framework.execute_batch(name, points))
            start = stop
        return records

    def explain(self, instance: QueryInstance) -> DecisionTrace:
        """Run one instance fully traced; returns its decision trace.

        A normal execution (state advances exactly as :meth:`execute`
        would — trace sampling consumes no randomness), except the
        sampler is bypassed so the full span tree is always captured
        and recorded into the template's flight recorder.
        """
        binder = self._binders.get(instance.template_name)
        if binder is None:
            raise WorkloadError(
                f"template {instance.template_name!r} is not registered"
            )
        point = binder.to_point(instance)
        return self.framework.explain(instance.template_name, point)

    def traces(
        self, template_name: "str | None" = None
    ) -> list[DecisionTrace]:
        """Flight-recorder contents, oldest first.

        One template's when named, otherwise every registered
        template's, interleaved in recording order per template.
        """
        if template_name is not None:
            if template_name not in self._binders:
                raise WorkloadError(
                    f"template {template_name!r} is not registered"
                )
            return self.framework.session(template_name).tracer.traces()
        collected: list[DecisionTrace] = []
        for name in self._binders:
            collected.extend(self.framework.session(name).tracer.traces())
        return collected

    def profile(self) -> "dict | None":
        """Aggregated stage-profiler report (``None`` unless
        ``PPCConfig.profiling.enabled``)."""
        return self.framework.profile_report()

    def lineage(self, query: str = "timeline") -> "LineageEngine | None":
        """A lineage engine over the lifecycle journal (``None`` unless
        ``PPCConfig.events.enabled``).

        ``query`` labels the ``ppc_lineage_queries_total`` counter so
        forensic traffic is itself observable.
        """
        engine = self.framework.lineage()
        if engine is not None:
            self.framework.metrics.counter(
                metric_names.LINEAGE_QUERIES_TOTAL, query=query
            ).inc()
        return engine

    def instance_at(
        self, template_name: str, point: np.ndarray
    ) -> QueryInstance:
        """Parameter values landing at a plan-space point (workload
        generation helper)."""
        binder = self._binders.get(template_name)
        if binder is None:
            raise WorkloadError(
                f"template {template_name!r} is not registered"
            )
        return binder.to_instance(point)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Full observability snapshot of the pipeline (JSON-ready).

        Per template: stage latency digests (p50/p95/p99, seconds),
        invocation-reason counts, positive-feedback outcomes, drift
        events, cache hit rate, predictor transform/range-query
        timings, the current synopsis footprint, and the resilience
        picture (breaker state and transitions, degradation counts per
        component, fallback servings by source, rejected instances,
        retry totals, fallback suboptimality) and the decision-trace
        block (sampler verdicts, flight-recorder occupancy and
        recorded/dropped totals); plus governor reclamation totals,
        the active clock source, and the raw metric registry.
        """
        registry = self.framework.metrics
        templates: dict[str, dict] = {}
        for name in self._binders:
            session = self.framework.session(name)
            registry.gauge(
                metric_names.SYNOPSIS_BYTES, template=name
            ).set(session.online.space_bytes())
            registry.gauge(
                metric_names.CACHE_PLANS, template=name
            ).set(len(session.cache))
            registry.gauge(
                metric_names.TRACE_OCCUPANCY, template=name
            ).set(session.tracer.recorder.occupancy)

            stages = {}
            for stage in metric_names.STAGES:
                digest = registry.histogram_summary(
                    metric_names.STAGE_SECONDS, template=name, stage=stage
                )
                if digest is not None:
                    stages[stage] = digest
            cache = session.cache
            templates[name] = {
                "executions": int(
                    registry.counter_value(
                        metric_names.EXECUTIONS_TOTAL, template=name
                    )
                ),
                "stage_seconds": stages,
                "invocation_reasons": {
                    reason: int(
                        registry.counter_value(
                            metric_names.INVOCATIONS_TOTAL,
                            template=name,
                            reason=reason,
                        )
                    )
                    for reason in metric_names.INVOCATION_REASONS
                },
                "optimizer_invocations": session.optimizer_invocations,
                "positive_feedback": {
                    outcome: int(
                        registry.counter_value(
                            metric_names.POSITIVE_FEEDBACK_TOTAL,
                            template=name,
                            outcome=outcome,
                        )
                    )
                    for outcome in ("accepted", "rejected")
                },
                "drift_events": session.drift_events,
                "cache": {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "evictions": cache.evictions,
                    "hit_rate": cache.hit_rate,
                    "size": len(cache),
                },
                "predictor": {
                    "transform_seconds": registry.histogram_summary(
                        metric_names.PREDICT_TRANSFORM_SECONDS,
                        template=name,
                    ),
                    "range_query_seconds": registry.histogram_summary(
                        metric_names.PREDICT_RANGE_QUERY_SECONDS,
                        template=name,
                    ),
                },
                "synopsis_bytes": session.online.space_bytes(),
                "resilience": {
                    "breaker_state": session.breaker.state,
                    "breaker_transitions": {
                        state: int(
                            registry.counter_value(
                                metric_names.BREAKER_TRANSITIONS_TOTAL,
                                template=name,
                                state=state,
                            )
                        )
                        for state in BREAKER_STATES
                    },
                    "degraded": {
                        component: int(
                            registry.counter_value(
                                metric_names.DEGRADED_TOTAL,
                                template=name,
                                component=component,
                            )
                        )
                        for component in metric_names.DEGRADED_COMPONENTS
                    },
                    "fallback_served": {
                        source: int(
                            registry.counter_value(
                                metric_names.FALLBACK_SERVED_TOTAL,
                                template=name,
                                source=source,
                            )
                        )
                        for source in metric_names.FALLBACK_SOURCES
                    },
                    "rejected_instances": {
                        reason: int(
                            registry.counter_value(
                                metric_names.REJECTED_INSTANCES_TOTAL,
                                template=name,
                                reason=reason,
                            )
                        )
                        for reason in metric_names.REJECTION_REASONS
                    },
                    "optimizer_retries": int(
                        registry.counter_value(
                            metric_names.OPTIMIZER_RETRIES_TOTAL,
                            template=name,
                        )
                    ),
                    "fallback_suboptimality": registry.histogram_summary(
                        metric_names.FALLBACK_SUBOPTIMALITY, template=name
                    ),
                },
                "trace": session.tracer.stats(),
            }

        governor = self.framework.governor
        governor_summary = None
        if governor is not None:
            governor_summary = {
                "budget_bytes": governor.budget_bytes,
                "total_bytes": governor.total_bytes,
                "reclaimed_bytes": governor.reclaimed_bytes,
                "shrinks": governor.shrinks,
                "drops": governor.drops,
            }
        # Evaluate SLOs (publishing state/burn gauges) *before* the
        # registry snapshot so scrape and snapshot agree.
        slo_block = self.slo() or None
        telemetry = self.framework.telemetry
        events = self.framework.events
        return {
            "templates": templates,
            "governor": governor_summary,
            "events": events.stats() if events is not None else None,
            "slo": slo_block,
            "telemetry": telemetry.stats() if telemetry else None,
            # The resilience machinery runs on an injectable clock, not
            # implicitly on wall time; say which source is active.
            "clock": {"source": self.framework.clock_source},
            "registry": registry.snapshot(),
        }

    def prometheus(self) -> str:
        """The metric registry as Prometheus text exposition."""
        self.metrics()  # refresh the gauges
        return render_prometheus(self.framework.metrics)

    def report(self) -> dict[str, dict[str, float]]:
        """Per-template caching outcome so far."""
        summary = {}
        for name in self._binders:
            session = self.framework.session(name)
            metrics = session.ground_truth_metrics()
            total = max(1, len(session.records))
            summary[name] = {
                "instances": float(total),
                "optimizer_invocations": float(
                    session.optimizer_invocations
                ),
                "invocation_rate": session.optimizer_invocations / total,
                "precision": metrics.precision,
                "recall": metrics.recall,
                "space_bytes": float(session.online.space_bytes()),
            }
        return summary

    def quality(self) -> dict[str, dict]:
        """Per-template plan-space scorecards (coverage, purity,
        entropy, rolling accuracy/regret, confidence margin, drift
        pressure, regret attribution over retained traces)."""
        config = self.framework.config.telemetry
        return {
            name: compute_scorecard(
                self.framework.session(name),
                probes=config.quality_probes,
                window=config.quality_window,
            )
            for name in self._binders
        }

    def slo(self) -> dict[str, list[dict]]:
        """SLO verdicts per template, publishing the state/burn gauges
        (empty when telemetry is disabled)."""
        engine = self.framework.slo_engine
        if engine is None:
            return {}
        return engine.export(self.templates)

    def health_report(self, tail: int = 32) -> dict:
        """The ``repro report`` payload: scorecards + SLO states +
        time-series digests, JSON-ready.

        ``tail`` caps the number of retained points included per series
        (the sparkline feed).
        """
        telemetry = self.framework.telemetry
        slo_block = self.slo()
        worst = "ok"
        if self.framework.slo_engine is not None:
            worst = self.framework.slo_engine.worst_state(slo_block)
        events = self.framework.events
        lifecycle = None
        if events is not None:
            lifecycle = {
                "stats": events.stats(),
                "timeline": events.events()[-tail:],
            }
        return {
            "clock": {
                "source": self.framework.clock_source,
                "now": telemetry.now() if telemetry else None,
            },
            "templates": self.quality(),
            "outcome": self.report(),
            "slo": slo_block,
            "worst_state": worst,
            "telemetry": telemetry.to_dict(tail) if telemetry else None,
            "lifecycle": lifecycle,
        }
