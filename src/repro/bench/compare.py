"""MAD-based regression detection against the committed baselines.

For every metric of every bench that both the fresh run and the
committed ``BENCH_*.json`` baseline report, the allowed worsening is::

    allowance = max(tolerance_abs,
                    |baseline| * tolerance_pct / 100,
                    mad_k * 1.4826 * MAD(history values))

The tolerances come from the *baseline* envelope (they were reviewed
and committed with it); the MAD term widens the bar by the measured
run-over-run noise of that metric in ``history.jsonl`` — the robust
analogue of "3 sigma", immune to the occasional outlier run that would
inflate a standard deviation.  With fewer than ``MIN_HISTORY`` journal
points the MAD term is skipped (a 2-point MAD is noise about noise).

A metric regresses when it worsens past the allowance in its declared
direction; it can also be reported ``improved`` (better by more than
the allowance) or ``missing`` (the fresh run dropped a baseline
metric — treated as a failure, silent metric loss is how gates rot).
"""

from __future__ import annotations

from statistics import median
from typing import Any

from repro.bench.history import metric_history

__all__ = [
    "DEFAULT_MAD_K",
    "MIN_HISTORY",
    "compare_run",
    "render_compare",
]

#: How many robust standard deviations of journal noise to allow.
DEFAULT_MAD_K = 3.0

#: Journal points needed before the MAD term participates.
MIN_HISTORY = 4

#: Scale factor turning a MAD into a normal-consistent sigma estimate.
_MAD_SIGMA = 1.4826


def _noise_allowance(values: list[float], mad_k: float) -> float:
    if len(values) < MIN_HISTORY:
        return 0.0
    center = median(values)
    mad = median(abs(v - center) for v in values)
    return mad_k * _MAD_SIGMA * mad


def _compare_metric(
    bench: str,
    name: str,
    current: dict[str, Any],
    baseline: dict[str, Any],
    history_values: list[float],
    mad_k: float,
) -> dict[str, Any]:
    baseline_value = float(baseline["value"])
    current_value = float(current["value"])
    allowance = max(
        float(baseline.get("tolerance_abs", 0.0)),
        abs(baseline_value) * float(baseline.get("tolerance_pct", 0.0)) / 100.0,
        _noise_allowance(history_values, mad_k),
    )
    direction = baseline.get("direction", "lower")
    delta = current_value - baseline_value
    worsening = delta if direction == "lower" else -delta
    if worsening > allowance:
        status = "regression"
    elif worsening < -allowance:
        status = "improved"
    else:
        status = "ok"
    return {
        "bench": bench,
        "metric": name,
        "status": status,
        "current": current_value,
        "baseline": baseline_value,
        "unit": baseline.get("unit", ""),
        "direction": direction,
        "allowance": allowance,
        "history_points": len(history_values),
    }


def compare_run(
    current: dict[str, dict[str, Any]],
    baselines: dict[str, dict[str, Any]],
    history_entries: "list[dict[str, Any]] | None" = None,
    current_run_id: "int | None" = None,
    mad_k: float = DEFAULT_MAD_K,
) -> dict[str, Any]:
    """Judge a fresh run's envelopes against the committed baselines.

    ``current`` and ``baselines`` map bench name → envelope; benches
    present on only one side are skipped (a new bench has no baseline
    yet; compare gates only what is pinned).  ``history_entries`` is
    the loaded journal (the fresh run itself is excluded via
    ``current_run_id`` so it cannot vote on its own allowance).
    """
    history_entries = history_entries if history_entries is not None else []
    verdicts: list[dict[str, Any]] = []
    for bench in sorted(set(current) & set(baselines)):
        baseline_metrics = baselines[bench].get("metrics", {})
        current_metrics = current[bench].get("metrics", {})
        for name, baseline_metric in sorted(baseline_metrics.items()):
            current_metric = current_metrics.get(name)
            if current_metric is None:
                verdicts.append(
                    {
                        "bench": bench,
                        "metric": name,
                        "status": "missing",
                        "current": None,
                        "baseline": float(baseline_metric["value"]),
                        "unit": baseline_metric.get("unit", ""),
                        "direction": baseline_metric.get("direction", "lower"),
                        "allowance": 0.0,
                        "history_points": 0,
                    }
                )
                continue
            values = metric_history(
                history_entries, bench, name, exclude_run=current_run_id
            )
            verdicts.append(
                _compare_metric(
                    bench,
                    name,
                    current_metric,
                    baseline_metric,
                    values,
                    mad_k,
                )
            )
    failures = [v for v in verdicts if v["status"] in ("regression", "missing")]
    return {
        "verdicts": verdicts,
        "benches_compared": sorted(set(current) & set(baselines)),
        "benches_skipped": sorted(set(current) ^ set(baselines)),
        "failures": failures,
        "passed": not failures,
    }


_STATUS_MARK = {
    "ok": "ok  ",
    "improved": "ok +",
    "regression": "FAIL",
    "missing": "FAIL",
}


def render_compare(report: dict[str, Any]) -> str:
    """Human-readable verdict table for ``repro bench compare``."""
    lines = [
        f"{'':4s} {'bench':<20s} {'metric':<28s} {'current':>12s} "
        f"{'baseline':>12s} {'allowed +/-':>12s}"
    ]
    for verdict in report["verdicts"]:
        current = verdict["current"]
        current_text = "missing" if current is None else f"{current:.4g}"
        lines.append(
            f"{_STATUS_MARK[verdict['status']]} {verdict['bench']:<20s} "
            f"{verdict['metric']:<28s} {current_text:>12s} "
            f"{verdict['baseline']:>12.4g} {verdict['allowance']:>12.4g}"
            + (f" {verdict['unit']}" if verdict["unit"] else "")
        )
    if report["benches_skipped"]:
        lines.append(
            "skipped (no counterpart): " + ", ".join(report["benches_skipped"])
        )
    if report["passed"]:
        lines.append("PASS: no metric regressed past its allowance")
    else:
        names = ", ".join(
            f"{v['bench']}.{v['metric']}" for v in report["failures"]
        )
        lines.append(f"REGRESSION: {names}")
    return "\n".join(lines)
