"""Locality-preserving transform pipeline (Section IV-B)."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.lsh.transforms import (
    PlanSpaceTransform,
    TransformEnsemble,
    hypersphere_radius,
)


class TestHypersphereRadius:
    def test_dimension_one(self):
        # 1-ball of radius r has volume 2r; [-1, 1] has volume 2 -> r = 1.
        assert hypersphere_radius(1) == pytest.approx(1.0)

    def test_dimension_two(self):
        # pi r^2 = 4 -> r = 2 / sqrt(pi).
        assert hypersphere_radius(2) == pytest.approx(2.0 / math.sqrt(math.pi))

    def test_radius_grows_with_dimension(self):
        radii = [hypersphere_radius(r) for r in range(1, 8)]
        assert all(a < b for a, b in zip(radii, radii[1:], strict=False))

    def test_invalid_dimension(self):
        with pytest.raises(ConfigurationError):
            hypersphere_radius(0)


class TestPipelineStages:
    def test_center_and_scale_maps_cube_vertices_to_sphere(self):
        transform = PlanSpaceTransform(2, seed=0)
        corners = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        scaled = transform.center_and_scale(corners)
        norms = np.linalg.norm(scaled, axis=1)
        assert norms == pytest.approx(transform.radius, rel=1e-12)

    def test_center_maps_centre_to_origin(self):
        transform = PlanSpaceTransform(3, seed=0)
        centre = transform.center_and_scale(np.full((1, 3), 0.5))
        assert np.abs(centre).max() < 1e-12

    def test_stretch_fixes_cube_surface_on_sphere(self):
        transform = PlanSpaceTransform(2, seed=0)
        # A point on the cube surface but not a vertex.
        surface = np.array([[transform.cube_half_width, 0.1]])
        stretched = transform.stretch(surface)
        assert np.linalg.norm(stretched[0]) == pytest.approx(transform.radius)

    def test_stretch_keeps_origin(self):
        transform = PlanSpaceTransform(2, seed=0)
        assert np.abs(transform.stretch(np.zeros((1, 2)))).max() == 0.0

    def test_stretch_is_radial(self):
        transform = PlanSpaceTransform(3, seed=0)
        point = np.array([[0.2, -0.1, 0.05]])
        stretched = transform.stretch(point)
        cross = np.cross(point[0], stretched[0])
        assert np.abs(cross).max() < 1e-12

    def test_projection_dimensions(self):
        transform = PlanSpaceTransform(4, output_dims=2, seed=0)
        out = transform.apply(np.random.default_rng(0).uniform(0, 1, (10, 4)))
        assert out.shape == (10, 2)

    def test_direction_vectors_are_unit(self):
        transform = PlanSpaceTransform(5, seed=3)
        norms = np.linalg.norm(transform.directions, axis=1)
        assert norms == pytest.approx(np.ones(5))

    def test_output_within_declared_bounds(self):
        transform = PlanSpaceTransform(3, seed=1)
        points = np.random.default_rng(1).uniform(0, 1, (500, 3))
        out = transform.apply(points)
        lo, hi = transform.output_bounds
        assert (out >= lo - 1e-9).all()
        assert (out <= hi + 1e-9).all()

    def test_translations_bounded_by_cell_fraction(self):
        resolution = 10
        transform = PlanSpaceTransform(
            2, resolution=resolution, translation_fraction=1.0, seed=2
        )
        cell = 2.0 * transform.radius / resolution
        assert (transform.translations >= 0.0).all()
        assert (transform.translations <= cell).all()

    def test_locality_preserved(self):
        """Close points stay close relative to far points."""
        transform = PlanSpaceTransform(2, seed=4)
        base = np.array([[0.3, 0.3]])
        near = np.array([[0.32, 0.31]])
        far = np.array([[0.9, 0.85]])
        b, n, f = (transform.apply(p)[0] for p in (base, near, far))
        assert np.linalg.norm(b - n) < np.linalg.norm(b - f)

    def test_invalid_output_dims(self):
        with pytest.raises(ConfigurationError):
            PlanSpaceTransform(2, output_dims=3)
        with pytest.raises(ConfigurationError):
            PlanSpaceTransform(2, output_dims=0)

    def test_dimension_mismatch_rejected(self):
        transform = PlanSpaceTransform(2, seed=0)
        with pytest.raises(ConfigurationError):
            transform.apply(np.zeros((3, 4)))


class TestEnsemble:
    def test_members_differ(self):
        ensemble = TransformEnsemble(3, 2, seed=0)
        d0 = ensemble.transforms[0].directions
        d1 = ensemble.transforms[1].directions
        assert not np.allclose(d0, d1)

    def test_deterministic_under_seed(self):
        a = TransformEnsemble(3, 2, seed=5)
        b = TransformEnsemble(3, 2, seed=5)
        points = np.random.default_rng(0).uniform(0, 1, (20, 2))
        for ta, tb in zip(a, b, strict=True):
            assert np.allclose(ta.apply(points), tb.apply(points))

    def test_apply_all_shapes(self):
        ensemble = TransformEnsemble(4, 3, seed=0)
        outputs = ensemble.apply_all(np.zeros((7, 3)))
        assert len(outputs) == 4
        assert all(out.shape == (7, 3) for out in outputs)

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ConfigurationError):
            TransformEnsemble(0, 2)
