"""Modified TPC-H schema: tables, columns and indexes.

Row counts follow the TPC-H specification at a configurable scale
factor.  Each table carries the artificial ``*_date`` column the paper
adds (populated with Gaussian values), and indexes exist over primary
keys (clustered), foreign keys and the date columns — matching the
experimental setup of Appendix A.

Dates are encoded as day offsets in ``[0, DATE_SPAN]``.
"""

from __future__ import annotations

from repro.optimizer.catalog import Catalog, Column, Index, Table

#: Days covered by the date columns (seven years, like TPC-H order dates).
DATE_SPAN = 2557

#: TPC-H row counts at scale factor 1.
_BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}


def _date_column(name: str) -> Column:
    return Column(name, 0.0, float(DATE_SPAN), DATE_SPAN, distribution="gaussian")


def build_catalog(scale_factor: float = 1.0) -> Catalog:
    """Create the modified TPC-H catalog at ``scale_factor``."""
    rows = {
        name: max(1, int(count * scale_factor))
        for name, count in _BASE_ROWS.items()
    }
    catalog = Catalog()

    def key(name: str, count: int) -> Column:
        return Column(name, 1.0, float(count), count)

    catalog.add_table(
        Table(
            "region",
            rows["region"],
            {
                "r_regionkey": key("r_regionkey", rows["region"]),
                "r_date": _date_column("r_date"),
            },
        )
    )
    catalog.add_table(
        Table(
            "nation",
            rows["nation"],
            {
                "n_nationkey": key("n_nationkey", rows["nation"]),
                "n_regionkey": key("n_regionkey", rows["region"]),
                "n_date": _date_column("n_date"),
            },
        )
    )
    catalog.add_table(
        Table(
            "supplier",
            rows["supplier"],
            {
                "s_suppkey": key("s_suppkey", rows["supplier"]),
                "s_nationkey": key("s_nationkey", rows["nation"]),
                "s_acctbal": Column("s_acctbal", -1000.0, 10_000.0, 9_000),
                "s_date": _date_column("s_date"),
            },
        )
    )
    catalog.add_table(
        Table(
            "customer",
            rows["customer"],
            {
                "c_custkey": key("c_custkey", rows["customer"]),
                "c_nationkey": key("c_nationkey", rows["nation"]),
                "c_acctbal": Column("c_acctbal", -1000.0, 10_000.0, 9_000),
                "c_date": _date_column("c_date"),
            },
        )
    )
    catalog.add_table(
        Table(
            "part",
            rows["part"],
            {
                "p_partkey": key("p_partkey", rows["part"]),
                "p_size": Column("p_size", 1.0, 50.0, 50),
                "p_retailprice": Column("p_retailprice", 900.0, 2100.0, 1_200),
                "p_date": _date_column("p_date"),
            },
        )
    )
    catalog.add_table(
        Table(
            "partsupp",
            rows["partsupp"],
            {
                "ps_partkey": key("ps_partkey", rows["part"]),
                "ps_suppkey": key("ps_suppkey", rows["supplier"]),
                "ps_availqty": Column("ps_availqty", 1.0, 9_999.0, 9_999),
                "ps_supplycost": Column("ps_supplycost", 1.0, 1_000.0, 1_000),
                "ps_date": _date_column("ps_date"),
            },
        )
    )
    catalog.add_table(
        Table(
            "orders",
            rows["orders"],
            {
                "o_orderkey": key("o_orderkey", rows["orders"]),
                "o_custkey": key("o_custkey", rows["customer"]),
                "o_totalprice": Column("o_totalprice", 800.0, 600_000.0, 150_000),
                "o_date": _date_column("o_date"),
            },
        )
    )
    catalog.add_table(
        Table(
            "lineitem",
            rows["lineitem"],
            {
                "l_orderkey": key("l_orderkey", rows["orders"]),
                "l_partkey": key("l_partkey", rows["part"]),
                "l_suppkey": key("l_suppkey", rows["supplier"]),
                "l_quantity": Column("l_quantity", 1.0, 50.0, 50),
                "l_extendedprice": Column("l_extendedprice", 900.0, 105_000.0, 100_000),
                "l_date": _date_column("l_date"),
            },
        )
    )

    _add_indexes(catalog)
    return catalog


def _add_indexes(catalog: Catalog) -> None:
    """Primary keys (clustered), foreign keys and date columns."""
    primary_keys = {
        "region": "r_regionkey",
        "nation": "n_nationkey",
        "supplier": "s_suppkey",
        "customer": "c_custkey",
        "part": "p_partkey",
        "partsupp": "ps_partkey",
        "orders": "o_orderkey",
        "lineitem": "l_orderkey",
    }
    foreign_keys = {
        "nation": ("n_regionkey",),
        "supplier": ("s_nationkey",),
        "customer": ("c_nationkey",),
        "partsupp": ("ps_suppkey",),
        "orders": ("o_custkey",),
        "lineitem": ("l_partkey", "l_suppkey"),
    }
    for table, column in primary_keys.items():
        catalog.add_index(
            Index(f"pk_{table}", table, column, unique=True, clustered=True)
        )
    for table, columns in foreign_keys.items():
        for column in columns:
            catalog.add_index(Index(f"fk_{table}_{column}", table, column))
    for table in catalog.tables.values():
        for column in table.columns.values():
            if column.distribution == "gaussian":
                catalog.add_index(
                    Index(f"ix_{table.name}_{column.name}", table.name, column.name)
                )
