"""Section V-D: estimator accuracy and plan-space drift detection.

Two experiments:

* :func:`run_estimator_accuracy` — how accurately the cost-feedback
  binary estimator (error bound ``epsilon = 0.25``) classifies
  predictions as correct/incorrect.  The paper reports roughly 72 %.
* :func:`run_drift_detection` — a workload whose plan space is
  artificially manipulated halfway through to violate both
  predictability assumptions; the online precision estimate must drop
  sharply shortly after the manipulation (and, with the drift response
  enabled, the framework drops its histograms and recovers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import PPCConfig
from repro.core.feedback import CostFeedbackDetector
from repro.core.framework import TemplateSession
from repro.core.histogram_predictor import HistogramPredictor
from repro.tpch import plan_space_for
from repro.workload import (
    ManipulatedPlanSpace,
    RandomTrajectoryWorkload,
    sample_labeled_pool,
    sample_points,
)


@dataclass(frozen=True)
class EstimatorAccuracy:
    """Confusion summary of the cost-feedback estimator."""

    template: str
    epsilon: float
    evaluated: int
    accuracy: float
    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int


def run_estimator_accuracy(
    template: str = "Q1",
    epsilon: float = 0.25,
    sample_size: int = 2000,
    test_size: int = 2000,
    seed: int = 7,
) -> EstimatorAccuracy:
    """Score the binary estimator against ground truth.

    For every answered test point, the estimator sees the predicted
    plan's *observed* execution cost and the histogram estimate, and
    declares the prediction erroneous or not; ground truth is whether
    the prediction matched the optimizer.
    """
    plan_space = plan_space_for(template)
    pool = sample_labeled_pool(plan_space, sample_size, seed=seed)
    predictor = HistogramPredictor(
        pool,
        plan_count=plan_space.plan_count,
        confidence_threshold=0.5,
        seed=seed,
    )
    detector = CostFeedbackDetector(epsilon)
    test = sample_points(plan_space.dimensions, test_size, seed=seed + 1)
    truth = plan_space.plan_at(test)

    tp = fp = tn = fn = 0
    for i in range(test.shape[0]):
        prediction = predictor.predict(test[i])
        if prediction is None or prediction.estimated_cost is None:
            continue
        observed = float(
            plan_space.cost_at(test[i][None, :], prediction.plan_id)[0]
        )
        flagged = detector.is_erroneous(prediction.estimated_cost, observed)
        wrong = prediction.plan_id != truth[i]
        if flagged and wrong:
            tp += 1
        elif flagged and not wrong:
            fp += 1
        elif not flagged and not wrong:
            tn += 1
        else:
            fn += 1
    evaluated = tp + fp + tn + fn
    accuracy = (tp + tn) / evaluated if evaluated else 0.0
    return EstimatorAccuracy(
        template, epsilon, evaluated, accuracy, tp, fp, tn, fn
    )


@dataclass
class DriftRun:
    """Precision-estimate trace around a mid-workload manipulation."""

    template: str
    manipulation_index: int
    alarm_index: "int | None"
    precision_trace: list[float]
    recall_before: float
    recall_after: float
    drift_events: int


def run_drift_detection(
    template: str = "Q1",
    workload_size: int = 2000,
    spread: float = 0.02,
    drift_response: bool = False,
    seed: int = 7,
) -> DriftRun:
    """Manipulate the plan space mid-workload and watch the estimators.

    Returns the online precision-estimate trace (one value per executed
    instance) plus the index of the first drift alarm after the
    manipulation, if any.
    """
    base = plan_space_for(template)
    oracle = ManipulatedPlanSpace(base, seed=seed)
    config = PPCConfig(
        confidence_threshold=0.8,
        noise_fraction=0.002,
        mean_invocation_probability=0.05,
        drift_response=drift_response,
        drift_threshold=0.6,
    )
    session = TemplateSession(oracle, config, seed=seed + 1)
    workload = RandomTrajectoryWorkload(
        base.dimensions, spread=spread, seed=seed + 2
    ).generate(workload_size)

    manipulation_index = workload_size // 2
    trace = []
    alarm_index = None
    for i in range(workload.shape[0]):
        if i == manipulation_index:
            oracle.activate()
        record = session.execute(workload[i])
        trace.append(session.monitor.precision_estimate)
        alarmed = record.drift_triggered or session.monitor.drift_detected()
        if alarm_index is None and i >= manipulation_index and alarmed:
            alarm_index = i

    def window_recall(records) -> float:
        answered_correct = sum(1 for r in records if r.correct)
        return answered_correct / len(records) if records else 0.0

    return DriftRun(
        template=template,
        manipulation_index=manipulation_index,
        alarm_index=alarm_index,
        precision_trace=trace,
        recall_before=window_recall(session.records[:manipulation_index]),
        recall_after=window_recall(session.records[manipulation_index:]),
        drift_events=session.drift_events,
    )
