"""Query templates Q0-Q8 over the modified TPC-H schema (Table III).

The paper's Table III lists nine query templates with parameter degrees
between 2 and 6; each parameterized predicate is a range predicate over
either an (indexed) date/key column or an unindexed numeric column, so
templates mix sargable and filter-only parameters.  Q1 matches the
worked example of the paper's Appendix A: ``s_date <= <v1>`` and
``l_partkey <= <v2>`` over supplier joined with lineitem.

``plan_space_for`` builds (and caches) the plan-space oracle for a
template, which is the object every experiment consumes.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.optimizer.catalog import Catalog
from repro.optimizer.cost_model import CostModel
from repro.optimizer.expressions import (
    ColumnRef,
    JoinPredicate,
    ParamPredicate,
    QueryTemplate,
)
from repro.optimizer.plan_space import PlanSpace
from repro.tpch.schema import build_catalog

TEMPLATE_NAMES = tuple(f"Q{i}" for i in range(9))


def _col(table: str, column: str) -> ColumnRef:
    return ColumnRef(table, column)


def _join(lt: str, lc: str, rt: str, rc: str) -> JoinPredicate:
    return JoinPredicate(_col(lt, lc), _col(rt, rc))


def _pred(table: str, column: str, index: int) -> ParamPredicate:
    return ParamPredicate(_col(table, column), index)


def _build_templates() -> dict[str, QueryTemplate]:
    templates = [
        QueryTemplate(
            name="Q0",
            tables=("orders", "customer"),
            joins=(_join("orders", "o_custkey", "customer", "c_custkey"),),
            predicates=(
                _pred("orders", "o_date", 0),
                _pred("customer", "c_date", 1),
            ),
            description="Orders per customer in a date window (degree 2).",
        ),
        QueryTemplate(
            name="Q1",
            tables=("supplier", "lineitem"),
            joins=(_join("supplier", "s_suppkey", "lineitem", "l_suppkey"),),
            predicates=(
                _pred("supplier", "s_date", 0),
                _pred("lineitem", "l_partkey", 1),
            ),
            description=(
                "The paper's Appendix-A example: s_date <= <v1> and "
                "l_partkey <= <v2> (degree 2)."
            ),
        ),
        QueryTemplate(
            name="Q2",
            tables=("part", "lineitem"),
            joins=(_join("part", "p_partkey", "lineitem", "l_partkey"),),
            predicates=(
                _pred("part", "p_date", 0),
                _pred("lineitem", "l_date", 1),
            ),
            description="Parts shipped in a window (degree 2).",
        ),
        QueryTemplate(
            name="Q3",
            tables=("customer", "orders", "lineitem"),
            joins=(
                _join("customer", "c_custkey", "orders", "o_custkey"),
                _join("orders", "o_orderkey", "lineitem", "l_orderkey"),
            ),
            predicates=(
                _pred("customer", "c_date", 0),
                _pred("orders", "o_date", 1),
                _pred("lineitem", "l_date", 2),
            ),
            description="Customer order lineage, TPC-H Q3 shaped (degree 3).",
        ),
        QueryTemplate(
            name="Q4",
            tables=("supplier", "lineitem", "orders"),
            joins=(
                _join("supplier", "s_suppkey", "lineitem", "l_suppkey"),
                _join("lineitem", "l_orderkey", "orders", "o_orderkey"),
            ),
            predicates=(
                _pred("supplier", "s_date", 0),
                # Secondary modulating parameter: sweeps a narrow linear
                # band, so it shifts costs without usually flipping plans
                # (real workload parameters are mostly of this kind).
                ParamPredicate(
                    _col("supplier", "s_acctbal"), 1,
                    sel_range=(0.45, 0.6), scale="linear",
                ),
                _pred("lineitem", "l_date", 2),
                _pred("orders", "o_date", 3),
            ),
            description="Supplier shipping activity (degree 4).",
        ),
        QueryTemplate(
            name="Q5",
            tables=("part", "partsupp", "supplier"),
            joins=(
                _join("part", "p_partkey", "partsupp", "ps_partkey"),
                _join("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
            ),
            predicates=(
                _pred("part", "p_date", 0),
                _pred("part", "p_retailprice", 1),
                _pred("partsupp", "ps_date", 2),
                _pred("supplier", "s_date", 3),
            ),
            description="Part sourcing, TPC-H Q2 shaped (degree 4).",
        ),
        QueryTemplate(
            name="Q6",
            tables=("nation", "supplier", "customer", "orders"),
            joins=(
                _join("nation", "n_nationkey", "supplier", "s_nationkey"),
                _join("nation", "n_nationkey", "customer", "c_nationkey"),
                _join("customer", "c_custkey", "orders", "o_custkey"),
            ),
            predicates=(
                # Two dominant parameters (customer and orders dates)
                # plus three narrow modulating ones: the typical shape of
                # real templates, where plan choice hinges on a few
                # selectivities and the rest only perturb costs.
                ParamPredicate(
                    _col("nation", "n_date"), 0,
                    sel_range=(0.6, 0.75), scale="linear",
                ),
                ParamPredicate(
                    _col("supplier", "s_date"), 1,
                    sel_range=(0.5, 0.65), scale="linear",
                ),
                ParamPredicate(_col("customer", "c_date"), 2,
                               sel_range=(1e-2, 1.0)),
                ParamPredicate(
                    _col("customer", "c_acctbal"), 3,
                    sel_range=(0.45, 0.6), scale="linear",
                ),
                ParamPredicate(_col("orders", "o_date"), 4,
                               sel_range=(1e-3, 0.2)),
            ),
            description="National market activity, TPC-H Q5 shaped (degree 5).",
        ),
        QueryTemplate(
            name="Q7",
            tables=("customer", "orders", "lineitem", "part", "supplier"),
            joins=(
                _join("customer", "c_custkey", "orders", "o_custkey"),
                _join("orders", "o_orderkey", "lineitem", "l_orderkey"),
                _join("lineitem", "l_partkey", "part", "p_partkey"),
                _join("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            ),
            predicates=(
                # Every parameter is relevant but sweeps roughly one
                # decade of selectivity, so each axis crosses only one or
                # two plan boundaries.  That keeps optimality regions fat
                # in all six dimensions — the regime where density-based
                # prediction stays viable at degree 6 and where the
                # paper's Q7 numbers are reachable.
                ParamPredicate(_col("customer", "c_date"), 0,
                               sel_range=(0.03, 0.3)),
                ParamPredicate(_col("orders", "o_date"), 1,
                               sel_range=(5e-3, 5e-2)),
                ParamPredicate(_col("lineitem", "l_date"), 2,
                               sel_range=(2e-3, 2e-2)),
                ParamPredicate(
                    _col("lineitem", "l_quantity"), 3,
                    sel_range=(0.3, 0.9), scale="linear",
                ),
                ParamPredicate(_col("part", "p_date"), 4,
                               sel_range=(0.05, 0.5)),
                ParamPredicate(_col("supplier", "s_date"), 5,
                               sel_range=(0.05, 0.5)),
            ),
            description="Full order provenance (degree 6, the hardest space).",
        ),
        QueryTemplate(
            name="Q8",
            tables=("orders", "lineitem"),
            joins=(_join("orders", "o_orderkey", "lineitem", "l_orderkey"),),
            predicates=(
                _pred("orders", "o_date", 0),
                _pred("orders", "o_totalprice", 1),
                _pred("lineitem", "l_date", 2),
            ),
            description="Large-order drill-down (degree 3).",
        ),
    ]
    return {template.name: template for template in templates}


_TEMPLATES = _build_templates()
_PLAN_SPACE_CACHE: dict[tuple, PlanSpace] = {}


def query_templates() -> dict[str, QueryTemplate]:
    """All nine templates, keyed by name."""
    return dict(_TEMPLATES)


def query_template(name: str) -> QueryTemplate:
    """One template by name (``"Q0"`` .. ``"Q8"``)."""
    try:
        return _TEMPLATES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown template {name!r}; expected one of {TEMPLATE_NAMES}"
        ) from None


def plan_space_for(
    name: str,
    catalog: "Catalog | None" = None,
    model: "CostModel | None" = None,
    seed: int = 0,
    scale_factor: float = 1.0,
) -> PlanSpace:
    """Plan-space oracle for a template, cached per configuration.

    Harvesting a plan space runs the DP optimizer at dozens of probe
    points, so experiments that revisit the same template share one
    oracle.  Passing an explicit ``catalog`` or ``model`` bypasses the
    cache.
    """
    template = query_template(name)
    if catalog is not None or model is not None:
        return PlanSpace(
            template,
            catalog or build_catalog(scale_factor),
            model=model,
            seed=seed,
        )
    key = (name, seed, scale_factor)
    if key not in _PLAN_SPACE_CACHE:
        _PLAN_SPACE_CACHE[key] = PlanSpace(
            template, build_catalog(scale_factor), seed=seed
        )
    return _PLAN_SPACE_CACHE[key]
