"""End-to-end integration: the full PPC stack on real plan spaces."""

import numpy as np
import pytest

from repro import (
    BaselinePredictor,
    HistogramPredictor,
    LshPredictor,
    NaivePredictor,
    PPCConfig,
    PPCFramework,
)
from repro.metrics import evaluate_predictions
from repro.workload import RandomTrajectoryWorkload, sample_labeled_pool


class TestApproximationLadderOrdering:
    """The qualitative shape of Section V-A on a real plan space:
    every algorithm is precise; the approximations trade recall."""

    @pytest.fixture(scope="class")
    def scores(self, q1_space, q1_pool, q1_test):
        test, truth = q1_test
        algorithms = {
            "baseline": BaselinePredictor(
                q1_pool, radius=0.05, confidence_threshold=0.7
            ),
            "naive": NaivePredictor(
                q1_pool, resolution=8, radius=0.05, confidence_threshold=0.7
            ),
            "lsh": LshPredictor(
                q1_pool, transforms=5, resolution=8,
                confidence_threshold=0.7, seed=1,
            ),
            "histograms": HistogramPredictor(
                q1_pool, transforms=5, max_buckets=40, radius=0.05,
                confidence_threshold=0.7, seed=1,
            ),
        }
        scores = {}
        for name, predictor in algorithms.items():
            ids = [
                None if p is None else p.plan_id
                for p in predictor.predict_batch(test)
            ]
            scores[name] = evaluate_predictions(ids, truth)
        return scores

    def test_everyone_is_precise(self, scores):
        for name, metrics in scores.items():
            assert metrics.precision > 0.9, name

    def test_baseline_has_best_recall(self, scores):
        for name in ("naive", "lsh", "histograms"):
            assert scores[name].recall <= scores["baseline"].recall + 0.05

    def test_histograms_beat_naive_recall(self, scores):
        assert scores["histograms"].recall > scores["naive"].recall

    def test_everyone_answers_something(self, scores):
        for name, metrics in scores.items():
            assert metrics.recall > 0.3, name


class TestOnlineConvergence:
    def test_recall_improves_over_time(self, q1_space):
        framework = PPCFramework(
            PPCConfig(confidence_threshold=0.8, drift_response=False),
            seed=0,
        )
        framework.register(q1_space)
        workload = RandomTrajectoryWorkload(2, spread=0.02, seed=11).generate(
            800
        )
        for point in workload:
            framework.execute("Q1", point)
        records = framework.session("Q1").records
        # The warm-up phase (empty sample pool) answers little; once
        # learned, the answer rate sits well above it (it still dips
        # whenever a trajectory enters unexplored territory).
        warmup = [r.predicted is not None for r in records[:20]]
        learned = [r.predicted is not None for r in records[20:]]
        assert np.mean(learned) > np.mean(warmup) + 0.1

    def test_invocation_rate_drops(self, q1_space):
        framework = PPCFramework(
            PPCConfig(confidence_threshold=0.8, drift_response=False),
            seed=0,
        )
        framework.register(q1_space)
        workload = RandomTrajectoryWorkload(2, spread=0.02, seed=12).generate(
            800
        )
        for point in workload:
            framework.execute("Q1", point)
        records = framework.session("Q1").records
        early = np.mean([r.optimizer_invoked for r in records[:200]])
        late = np.mean([r.optimizer_invoked for r in records[-200:]])
        assert late < early

    def test_executed_plans_never_catastrophic(self, q1_space):
        """Executed plans stay within a sane factor of optimal on
        average — mispredictions are rare and bounded."""
        framework = PPCFramework(
            PPCConfig(confidence_threshold=0.8, drift_response=False),
            seed=0,
        )
        framework.register(q1_space)
        workload = RandomTrajectoryWorkload(2, spread=0.04, seed=13).generate(
            500
        )
        for point in workload:
            framework.execute("Q1", point)
        suboptimality = np.array(
            [r.suboptimality for r in framework.session("Q1").records]
        )
        assert np.median(suboptimality) == pytest.approx(1.0)
        assert suboptimality.mean() < 2.0


class TestHigherDimensionalTemplates:
    def test_q5_pipeline(self, q5_space):
        pool = sample_labeled_pool(q5_space, 1500, seed=21)
        predictor = HistogramPredictor(
            pool, transforms=5, max_buckets=40, radius=0.1,
            confidence_threshold=0.7, seed=1,
        )
        from repro.workload import sample_points

        test = sample_points(q5_space.dimensions, 300, seed=22)
        truth = q5_space.plan_at(test)
        ids = [
            None if p is None else p.plan_id
            for p in predictor.predict_batch(test)
        ]
        metrics = evaluate_predictions(ids, truth)
        assert metrics.precision > 0.8
        assert metrics.recall > 0.1
