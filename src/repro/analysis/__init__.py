"""Project-specific static analysis: the invariant linter.

PR 1 and PR 2 made several conventions load-bearing — spawn-keyed RNG
streams for reproducible sampling, an injectable clock for retry and
breaker logic, a central metric-name registry, atomic fsync+rename
persistence — but conventions that nothing enforces decay.  This
package is the enforcement layer: a small AST-based rule framework
(:mod:`repro.analysis.core`), the nine per-file project rules
(:mod:`repro.analysis.rules`, codes ``RPR001``–``RPR009``), the
whole-program effect analysis and its ``RPR101``–``RPR104`` rules
(:mod:`repro.analysis.effects` — call-graph purity, determinism
taint, mutation discipline, documented exceptions), inline ``# repro:
noqa[RULE]`` suppressions, a committed baseline for incremental
burn-down (:mod:`repro.analysis.baseline`), and text/JSON/GitHub
reporters (:mod:`repro.analysis.report`).

Run it as ``repro lint`` or ``python -m repro.analysis`` (add
``--effects`` for the interprocedural pass); CI gates on both the
repository tree being clean and the rules themselves firing on
known-bad snippets (``--selftest``).
"""

from repro.analysis.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    rule_registry,
)
from repro.analysis.report import render_github, render_json, render_text
from repro.analysis.selftest import SELFTEST_CASES, run_selftest

__all__ = [
    "BaselineEntry",
    "Finding",
    "ModuleContext",
    "Rule",
    "SELFTEST_CASES",
    "all_rules",
    "apply_baseline",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_github",
    "render_json",
    "render_text",
    "rule_registry",
    "run_selftest",
    "write_baseline",
]
