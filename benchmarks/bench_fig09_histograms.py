"""Figure 9: APPROXIMATE-LSH vs APPROXIMATE-LSH-HISTOGRAMS on Q5.

Paper shape: moving the grid synopses into boundary-optimizing database
histograms improves precision (better-aligned buckets) at some cost in
recall (z-order fragmentation + the confidence check), with a large
space saving.  Times one histogram prediction.
"""

import numpy as np

from _bench_utils import write_result
from repro.core.histogram_predictor import HistogramPredictor
from repro.experiments.approximation import run_histogram_comparison
from repro.tpch import plan_space_for
from repro.workload import sample_labeled_pool, sample_points


def test_fig09_histogram_comparison(benchmark):
    results = run_histogram_comparison(template="Q5", test_size=600, seed=7)
    lines = [
        "Figure 9 — APPROXIMATE-LSH vs APPROXIMATE-LSH-HISTOGRAMS (Q5,",
        "gamma = 0.7, d = 0.05, t = 5, b_h = 40)",
        "",
        f"{'|X|':>6s} {'algorithm':28s} {'precision':>10s} {'recall':>8s} "
        f"{'bytes':>10s}",
    ]
    for row in results:
        lines.append(
            f"{row.sample_size:6d} {row.algorithm:28s} "
            f"{row.precision:10.3f} {row.recall:8.3f} {row.space_bytes:10,d}"
        )
    write_result("fig09_histograms", lines)

    def mean(rows, algorithm, attr):
        cells = [
            getattr(r, attr) for r in rows if r.algorithm == algorithm
        ]
        return float(np.mean(cells))

    hist = "APPROXIMATE-LSH-HISTOGRAMS"
    grid = "APPROXIMATE-LSH"
    # Precision at least comparable, space strictly smaller.
    assert mean(results, hist, "precision") >= mean(results, grid, "precision") - 0.03
    assert mean(results, hist, "space_bytes") < mean(results, grid, "space_bytes")

    space = plan_space_for("Q5")
    pool = sample_labeled_pool(space, 1600, seed=7)
    predictor = HistogramPredictor(
        pool, transforms=5, max_buckets=40, radius=0.05, seed=1
    )
    point = sample_points(space.dimensions, 1, seed=3)[0]
    benchmark(predictor.predict, point)
