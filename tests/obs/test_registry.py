"""Unit tests for the observability layer (registry + exporters)."""

import json
import math

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    render_prometheus,
    time_block,
    timed,
)
from repro.obs import names as metric_names
from repro.obs.prometheus import _format_value
from repro.obs.registry import BUCKET_MIN


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = Counter()
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0)
        assert counter.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec(2.0)
        assert gauge.value == 13.0


class TestLatencyHistogram:
    def test_empty_histogram_digest(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.quantile(0.5) == 0.0
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["min"] == 0.0
        assert summary["mean"] == 0.0

    def test_exact_stats_are_tracked(self):
        hist = LatencyHistogram()
        samples = [0.001, 0.002, 0.004, 0.010]
        for s in samples:
            hist.observe(s)
        assert hist.count == 4
        assert hist.sum == pytest.approx(sum(samples))
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.010)
        assert hist.mean == pytest.approx(sum(samples) / 4)

    def test_quantiles_within_bucket_resolution(self):
        # 1000 samples spread geometrically across three decades; the
        # log-bucket scheme bounds relative error at one bucket width
        # (10**0.1 ~ 1.26), so allow ~30 %.
        hist = LatencyHistogram()
        samples = [1e-4 * (10 ** (3 * i / 999)) for i in range(1000)]
        for s in samples:
            hist.observe(s)
        samples.sort()
        for q in (0.50, 0.95, 0.99):
            exact = samples[int(q * len(samples)) - 1]
            estimate = hist.quantile(q)
            assert estimate == pytest.approx(exact, rel=0.30)

    def test_quantile_clamped_to_observed_range(self):
        hist = LatencyHistogram()
        hist.observe(0.005)
        # A single sample: every quantile is the sample itself, up to
        # bucket interpolation clamped by min/max.
        assert hist.quantile(0.0) <= 0.005 <= hist.quantile(1.0) * 1.0001
        assert hist.quantile(1.0) == pytest.approx(0.005, rel=1e-9)

    def test_negative_and_tiny_durations_fold_into_first_bucket(self):
        hist = LatencyHistogram()
        hist.observe(-1.0)
        hist.observe(BUCKET_MIN / 10)
        assert hist.count == 2
        assert hist.counts[0] == 2

    def test_huge_durations_fold_into_last_bucket(self):
        hist = LatencyHistogram()
        hist.observe(1e9)
        assert hist.counts[-1] == 1
        assert hist.max == 1e9

    def test_quantile_validates_range(self):
        hist = LatencyHistogram()
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)


class TestMetricsRegistry:
    def test_handles_are_stable_per_label_set(self):
        registry = MetricsRegistry()
        a = registry.counter("events_total", kind="x")
        b = registry.counter("events_total", kind="x")
        c = registry.counter("events_total", kind="y")
        assert a is b
        assert a is not c
        a.inc()
        assert registry.counter_value("events_total", kind="x") == 1.0
        assert registry.counter_value("events_total", kind="y") == 0.0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("t", x="1", y="2")
        b = registry.counter("t", y="2", x="1")
        assert a is b

    def test_unknown_series_read_as_zero_or_none(self):
        registry = MetricsRegistry()
        assert registry.counter_value("nope") == 0.0
        assert registry.gauge_value("nope") == 0.0
        assert registry.histogram_summary("nope") is None

    def test_counter_series_lists_all_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("hits", template="Q1").inc(3)
        registry.counter("hits", template="Q5").inc(7)
        series = dict(
            (labels["template"], value)
            for labels, value in registry.counter_series("hits")
        )
        assert series == {"Q1": 3.0, "Q5": 7.0}

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("events_total", kind="x").inc(2)
        registry.gauge("bytes", template="Q1").set(128)
        registry.histogram("lat_seconds", stage="predict").observe(0.01)
        snapshot = registry.snapshot()
        round_trip = json.loads(json.dumps(snapshot))
        assert round_trip["counters"]["events_total"][0]["value"] == 2
        assert round_trip["gauges"]["bytes"][0]["labels"] == {
            "template": "Q1"
        }
        hist = round_trip["histograms"]["lat_seconds"][0]
        assert hist["count"] == 1
        assert set(hist) >= {"p50", "p95", "p99", "sum", "mean", "labels"}

    def test_time_block_records_into_histogram(self):
        registry = MetricsRegistry()
        with registry.time_block("lat_seconds", stage="s"):
            pass
        summary = registry.histogram_summary("lat_seconds", stage="s")
        assert summary["count"] == 1
        assert summary["sum"] >= 0.0

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(0.1)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}


class TestTimingHelpers:
    def test_time_block_helper_observes_once(self):
        hist = LatencyHistogram()
        with time_block(hist):
            math.sqrt(2.0)
        assert hist.count == 1

    def test_time_block_records_on_exception(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError), time_block(hist):
            raise ValueError("boom")
        assert hist.count == 1

    def test_timed_decorator(self):
        registry = MetricsRegistry()

        @timed(registry, "calls_seconds", fn="f")
        def f(x):
            return x * 2

        assert f(21) == 42
        assert f(1) == 2
        summary = registry.histogram_summary("calls_seconds", fn="f")
        assert summary["count"] == 2

    def test_timed_decorator_records_on_exception(self):
        registry = MetricsRegistry()

        @timed(registry, "calls_seconds", fn="g")
        def g():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            g()
        assert registry.histogram_summary("calls_seconds", fn="g")[
            "count"
        ] == 1

    def test_timed_preserves_function_metadata(self):
        registry = MetricsRegistry()

        @timed(registry, "calls_seconds", fn="doc")
        def documented():
            """Docstring survives the wrapper."""

        assert documented.__name__ == "documented"
        assert "survives" in documented.__doc__

    def test_time_block_durations_are_monotone(self):
        import time as _time

        hist = LatencyHistogram()
        with time_block(hist):
            _time.perf_counter()  # trivially short block
        assert hist.count == 1
        assert hist.min >= 0.0
        assert hist.max >= hist.min


class TestPrometheusRendering:
    def test_renders_all_metric_kinds(self):
        registry = MetricsRegistry()
        registry.counter("ppc_events_total", kind="hit").inc(3)
        registry.gauge("ppc_bytes", template="Q1").set(64)
        registry.histogram("ppc_lat_seconds", stage="predict").observe(0.01)
        text = render_prometheus(registry)

        assert "# TYPE ppc_events_total counter" in text
        assert 'ppc_events_total{kind="hit"} 3' in text
        assert "# TYPE ppc_bytes gauge" in text
        assert 'ppc_bytes{template="Q1"} 64' in text
        assert "# TYPE ppc_lat_seconds summary" in text
        assert 'quantile="0.5"' in text
        assert 'quantile="0.95"' in text
        assert 'quantile="0.99"' in text
        assert 'ppc_lat_seconds_count{stage="predict"} 1' in text
        assert text.endswith("\n")

    def test_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c", q='say "hi"\n').inc()
        text = render_prometheus(registry)
        assert '\\"hi\\"' in text
        assert "\\n" in text

    def test_unlabeled_series_render_bare(self):
        registry = MetricsRegistry()
        registry.counter("total").inc(5)
        text = render_prometheus(registry)
        assert "total 5" in text.splitlines()

    def test_empty_histogram_renders_zero_quantiles(self):
        # A registered-but-never-observed histogram must still render,
        # with zero quantiles and counts — not crash or emit nan.
        registry = MetricsRegistry()
        registry.histogram("ppc_lat_seconds", stage="idle")
        text = render_prometheus(registry)
        assert 'ppc_lat_seconds{quantile="0.5",stage="idle"} 0' in text
        assert 'ppc_lat_seconds_count{stage="idle"} 0' in text
        assert "nan" not in text
        assert "inf" not in text


class TestPrometheusNonFiniteValues:
    def test_format_value_spells_non_finite_the_prometheus_way(self):
        # Regression: repr() would emit `inf`/`nan`, which scrapers
        # reject; the exposition format requires `+Inf`/`-Inf`/`NaN`.
        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(float("nan")) == "NaN"
        assert _format_value(3.0) == "3"
        assert _format_value(0.25) == "0.25"

    def test_non_finite_gauges_render_scrapeable(self):
        registry = MetricsRegistry()
        registry.gauge("g_inf").set(float("inf"))
        registry.gauge("g_ninf").set(float("-inf"))
        registry.gauge("g_nan").set(float("nan"))
        lines = render_prometheus(registry).splitlines()
        assert "g_inf +Inf" in lines
        assert "g_ninf -Inf" in lines
        assert "g_nan NaN" in lines


class TestMetricInventory:
    def test_every_name_constant_is_in_the_inventory(self):
        # Every public module-level metric-name string in repro.obs.names
        # must carry an inventory entry (and therefore a HELP line).
        constants = {
            value
            for key, value in vars(metric_names).items()
            if key.isupper()
            and isinstance(value, str)
            and value.startswith("ppc_")
        }
        inventoried = {spec.name for spec in metric_names.INVENTORY}
        assert constants == inventoried

    def test_inventory_kinds_are_valid(self):
        for spec in metric_names.INVENTORY:
            assert spec.kind in ("counter", "gauge", "histogram"), spec.name
            assert spec.help.strip(), spec.name

    def test_every_inventory_name_renders_type_and_help(self):
        # The satellite contract: instantiate every inventoried metric
        # and confirm the exporter emits both `# TYPE` and `# HELP`.
        registry = MetricsRegistry()
        for spec in metric_names.INVENTORY:
            if spec.kind == "counter":
                registry.counter(spec.name, template="Q1").inc()
            elif spec.kind == "gauge":
                registry.gauge(spec.name, template="Q1").set(1.0)
            else:
                registry.histogram(spec.name, template="Q1").observe(0.01)
        text = render_prometheus(registry)
        for spec in metric_names.INVENTORY:
            rendered_kind = (
                "summary" if spec.kind == "histogram" else spec.kind
            )
            assert f"# TYPE {spec.name} {rendered_kind}" in text, spec.name
            assert f"# HELP {spec.name} " in text, spec.name

    def test_help_text_lookup(self):
        assert metric_names.help_text(metric_names.EXECUTIONS_TOTAL)
        assert metric_names.help_text("not_a_metric") == ""


class TestRegistryMerge:
    def test_counters_add_and_gauges_take_the_latest(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c", template="Q1").inc(3)
        b.counter("c", template="Q1").inc(4)
        b.counter("c", template="Q5").inc(1)
        a.gauge("g").set(10.0)
        b.gauge("g").set(2.0)
        a.merge(b)
        assert a.counter_value("c", template="Q1") == 7.0
        assert a.counter_value("c", template="Q5") == 1.0
        assert a.gauge_value("g") == 2.0

    def test_histograms_merge_bucket_wise(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for s in (0.001, 0.002):
            a.histogram("h", stage="x").observe(s)
        for s in (0.004, 0.100):
            b.histogram("h", stage="x").observe(s)
        a.merge(b)
        summary = a.histogram_summary("h", stage="x")
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(0.107)
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.100)

    def test_merging_an_empty_histogram_is_a_no_op(self):
        a = MetricsRegistry()
        a.histogram("h").observe(0.005)
        before = a.histogram_summary("h")
        empty = MetricsRegistry()
        empty.histogram("h")  # registered, never observed
        a.merge(empty)
        assert a.histogram_summary("h") == before
        # min must not be clobbered by the empty twin's +inf sentinel.
        assert a.histogram_summary("h")["min"] == pytest.approx(0.005)

    def test_merge_is_label_order_insensitive(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c", x="1", y="2").inc(1)
        b.counter("c", y="2", x="1").inc(2)
        a.merge(b)
        assert a.counter_value("c", x="1", y="2") == 3.0
        snapshot = a.snapshot()
        assert len(snapshot["counters"]["c"]) == 1

    def test_merge_into_empty_registry_copies_everything(self):
        source = MetricsRegistry()
        source.counter("c").inc(5)
        source.gauge("g", template="Q1").set(7.0)
        source.histogram("h").observe(0.01)
        target = MetricsRegistry()
        target.merge(source)
        assert target.counter_value("c") == 5.0
        assert target.gauge_value("g", template="Q1") == 7.0
        assert target.histogram_summary("h")["count"] == 1
        # The source is untouched.
        assert source.counter_value("c") == 5.0
