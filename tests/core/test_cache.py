"""Plan cache: hits, misses, caching-potential eviction."""

import pytest

from repro.core.cache import PlanCache
from repro.core.monitor import PerformanceMonitor
from repro.exceptions import ConfigurationError


class _FakePlan:
    """Stands in for a PhysicalPlan; the cache never inspects plans."""

    def __init__(self, name):
        self.fingerprint = name


class TestBasicOperations:
    def test_get_miss_then_hit(self):
        cache = PlanCache(capacity=2)
        assert cache.get(1) is None
        cache.put(1, _FakePlan("a"))
        assert cache.get(1).fingerprint == "a"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_contains(self):
        cache = PlanCache(capacity=2)
        cache.put(3, _FakePlan("x"))
        assert 3 in cache
        assert 4 not in cache

    def test_put_refreshes_existing(self):
        cache = PlanCache(capacity=2)
        cache.put(1, _FakePlan("a"))
        cache.put(2, _FakePlan("b"))
        cache.put(1, _FakePlan("a2"))  # refresh 1; 2 becomes LRU
        cache.put(3, _FakePlan("c"))
        assert 1 in cache
        assert 2 not in cache

    def test_hit_rate(self):
        cache = PlanCache(capacity=2)
        cache.put(1, _FakePlan("a"))
        cache.get(1)
        cache.get(2)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            PlanCache(capacity=0)


class TestEviction:
    def test_lru_eviction_without_monitor(self):
        cache = PlanCache(capacity=2)
        cache.put(1, _FakePlan("a"))
        cache.put(2, _FakePlan("b"))
        cache.get(1)  # 2 becomes least recent
        cache.put(3, _FakePlan("c"))
        assert 2 not in cache
        assert 1 in cache and 3 in cache
        assert cache.evictions == 1

    def test_low_precision_plan_evicted_first(self):
        monitor = PerformanceMonitor()
        cache = PlanCache(capacity=2, monitor=monitor)
        cache.put(1, _FakePlan("good"))
        cache.put(2, _FakePlan("bad"))
        monitor.record_prediction(1, True)
        monitor.record_prediction(2, False)
        cache.get(2)  # even though 2 is most recent...
        cache.put(3, _FakePlan("new"))
        # ...its poor precision makes it the eviction victim.
        assert 2 not in cache
        assert 1 in cache

    def test_clear(self):
        cache = PlanCache(capacity=4)
        cache.put(1, _FakePlan("a"))
        cache.clear()
        assert len(cache) == 0
