"""ONLINE-APPROXIMATE-LSH-HISTOGRAMS policies."""

import numpy as np
import pytest

from repro.core.online import OnlinePredictor
from repro.core.predictor import Prediction
from repro.exceptions import ConfigurationError


@pytest.fixture()
def online():
    return OnlinePredictor(
        dimensions=2,
        plan_count=3,
        confidence_threshold=0.5,
        mean_invocation_probability=0.05,
        seed=0,
    )


class TestLearning:
    def test_starts_empty_and_silent(self, online):
        assert online.sample_count == 0
        assert online.predict([0.5, 0.5]) is None

    def test_observes_and_predicts(self, online):
        for __ in range(8):
            online.observe(np.array([0.3, 0.3]), plan_id=1, cost=10.0)
        prediction = online.predict([0.3, 0.3])
        assert prediction is not None
        assert prediction.plan_id == 1
        assert online.sample_count == 8

    def test_drop_forgets(self, online):
        for __ in range(8):
            online.observe(np.array([0.3, 0.3]), 1, 10.0)
        online.drop()
        assert online.sample_count == 0
        assert online.predict([0.3, 0.3]) is None


class TestInvocationPolicy:
    def test_null_prediction_forces_invocation(self, online):
        assert online.should_invoke_optimizer(None)

    def test_zero_probability_never_explores(self):
        online = OnlinePredictor(
            2, 3, mean_invocation_probability=0.0, seed=0
        )
        prediction = Prediction(0, confidence=0.1)
        assert not any(
            online.should_invoke_optimizer(prediction) for __ in range(100)
        )

    def test_confident_predictions_rarely_explored(self, online):
        confident = Prediction(0, confidence=0.999)
        fires = sum(
            online.should_invoke_optimizer(confident) for __ in range(2000)
        )
        assert fires < 20

    def test_unsure_predictions_explored_more(self):
        online = OnlinePredictor(
            2, 3, mean_invocation_probability=0.1, seed=1
        )
        unsure = Prediction(0, confidence=0.0)
        confident = Prediction(0, confidence=0.95)
        unsure_fires = sum(
            online.should_invoke_optimizer(unsure) for __ in range(2000)
        )
        confident_fires = sum(
            online.should_invoke_optimizer(confident) for __ in range(2000)
        )
        assert unsure_fires > confident_fires
        # Mean rate at confidence 0 is 2p = 0.2.
        assert unsure_fires == pytest.approx(400, rel=0.3)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            OnlinePredictor(2, 3, mean_invocation_probability=1.5)


class TestNegativeFeedback:
    def test_error_suspected_on_cost_blowup(self, online):
        prediction = Prediction(0, 0.9, estimated_cost=100.0)
        assert online.suspect_error(prediction, observed_cost=200.0)

    def test_no_error_within_bound(self, online):
        prediction = Prediction(0, 0.9, estimated_cost=100.0)
        assert not online.suspect_error(prediction, observed_cost=110.0)

    def test_disabled_feedback_never_fires(self):
        online = OnlinePredictor(2, 3, negative_feedback=False, seed=0)
        prediction = Prediction(0, 0.9, estimated_cost=100.0)
        assert not online.suspect_error(prediction, observed_cost=1e9)

    def test_corrective_insert_reduces_support(self, online):
        """Inserting truth points of another plan flips the majority —
        the negative-feedback mechanism of Section IV-D."""
        x = np.array([0.4, 0.4])
        for __ in range(4):
            online.observe(x, plan_id=0, cost=10.0)
        assert online.predict(x).plan_id == 0
        # A handful of corrective points makes the region contested
        # (confidence below threshold -> NULL)...
        for __ in range(12):
            online.observe(x, plan_id=2, cost=10.0)
        assert online.predict(x) is None
        # ...and a solid corrective majority flips the prediction.
        for __ in range(13):
            online.observe(x, plan_id=2, cost=10.0)
        assert online.predict(x).plan_id == 2
