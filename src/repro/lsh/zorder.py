"""Z-order (Morton) space-filling curve.

Section IV-C of the paper linearizes the multi-dimensional grid over
each transformed plan space onto ``[0, 1]`` by z-ordering the grid
cells, so that per-plan point distributions can be stored in
unidimensional database histograms.  The z-order curve preserves
locality: points in the same grid cell share a z-value, and nearby
cells usually map to nearby z-values (with the occasional long jump
that the paper's *noise elimination* check compensates for).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


class ZOrderCurve:
    """Morton encoder/decoder for ``dims`` dimensions at ``bits`` per axis.

    Cell coordinates are integers in ``[0, 2**bits)``; codes are integers
    in ``[0, 2**(dims*bits))``.  :meth:`linearize` additionally maps
    continuous points in the unit cube directly to normalized z-values
    in ``[0, 1)``.
    """

    def __init__(self, dims: int, bits: int) -> None:
        if dims < 1:
            raise ConfigurationError("ZOrderCurve needs dims >= 1")
        if bits < 1 or dims * bits > 62:
            raise ConfigurationError(
                f"dims*bits must lie in [1, 62], got {dims * bits}"
            )
        self.dims = dims
        self.bits = bits
        self.cells_per_axis = 1 << bits
        self.total_codes = 1 << (dims * bits)

    # ------------------------------------------------------------------
    # Integer cell coordinates <-> Morton codes
    # ------------------------------------------------------------------
    def encode(self, coords: np.ndarray) -> np.ndarray:
        """Interleave integer cell coordinates ``(n, dims)`` into codes."""
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim == 1:
            coords = coords[None, :]
        if coords.shape[1] != self.dims:
            raise ConfigurationError(
                f"expected {self.dims} coordinates, got {coords.shape[1]}"
            )
        if (coords < 0).any() or (coords >= self.cells_per_axis).any():
            raise ConfigurationError("cell coordinate outside grid range")
        codes = np.zeros(coords.shape[0], dtype=np.int64)
        for bit in range(self.bits):
            for axis in range(self.dims):
                source_bit = (coords[:, axis] >> bit) & 1
                target = bit * self.dims + (self.dims - 1 - axis)
                codes |= source_bit << target
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Invert :meth:`encode`: codes ``(n,)`` to coordinates ``(n, dims)``."""
        codes = np.asarray(codes, dtype=np.int64)
        scalar = codes.ndim == 0
        codes = np.atleast_1d(codes)
        if (codes < 0).any() or (codes >= self.total_codes).any():
            raise ConfigurationError("z-order code outside curve range")
        coords = np.zeros((codes.shape[0], self.dims), dtype=np.int64)
        for bit in range(self.bits):
            for axis in range(self.dims):
                source = bit * self.dims + (self.dims - 1 - axis)
                coords[:, axis] |= ((codes >> source) & 1) << bit
        if scalar:
            return coords[0]
        return coords

    # ------------------------------------------------------------------
    # Continuous points <-> normalized z-values
    # ------------------------------------------------------------------
    def linearize(self, points: np.ndarray) -> np.ndarray:
        """Map unit-cube points ``(n, dims)`` to z-values in ``[0, 1)``.

        Points are snapped to grid cells first, so two points in the
        same cell receive identical z-values — exactly the granularity
        the database histograms see.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        cells = np.clip(
            (points * self.cells_per_axis).astype(np.int64),
            0,
            self.cells_per_axis - 1,
        )
        return self.encode(cells) / self.total_codes

    def cell_extent(self) -> float:
        """Width of one cell on the normalized z-axis."""
        return 1.0 / self.total_codes
