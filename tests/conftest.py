"""Shared fixtures.

Plan spaces are expensive to harvest, so the TPC-H-backed ones are
session-scoped (and additionally cached inside :mod:`repro.tpch`).  A
tiny synthetic two-table catalog keeps pure-optimizer tests fast and
independent of the TPC-H substrate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.point import SamplePool
from repro.optimizer.catalog import Catalog, Column, Index, Table
from repro.optimizer.expressions import (
    ColumnRef,
    JoinPredicate,
    ParamPredicate,
    QueryTemplate,
)
from repro.optimizer.plan_space import PlanSpace
from repro.tpch import plan_space_for
from repro.workload import sample_labeled_pool, sample_points


@pytest.fixture(scope="session")
def tiny_catalog() -> Catalog:
    """Two joinable tables with indexed and unindexed columns."""
    catalog = Catalog()
    catalog.add_table(
        Table(
            "emp",
            50_000,
            {
                "emp_id": Column("emp_id", 1, 50_000, 50_000),
                "dept_id": Column("dept_id", 1, 500, 500),
                "salary": Column("salary", 10_000, 200_000, 5_000),
                "hired": Column("hired", 0, 1000, 1000, distribution="gaussian"),
            },
        )
    )
    catalog.add_table(
        Table(
            "dept",
            500,
            {
                "dept_id": Column("dept_id", 1, 500, 500),
                "budget": Column("budget", 1_000, 1_000_000, 400),
            },
        )
    )
    catalog.add_index(Index("pk_emp", "emp", "emp_id", unique=True, clustered=True))
    catalog.add_index(Index("fk_emp_dept", "emp", "dept_id"))
    catalog.add_index(Index("ix_emp_hired", "emp", "hired"))
    catalog.add_index(Index("pk_dept", "dept", "dept_id", unique=True, clustered=True))
    return catalog


@pytest.fixture(scope="session")
def tiny_template() -> QueryTemplate:
    """emp join dept with two parameterized predicates."""
    return QueryTemplate(
        name="tiny",
        tables=("emp", "dept"),
        joins=(
            JoinPredicate(ColumnRef("emp", "dept_id"), ColumnRef("dept", "dept_id")),
        ),
        predicates=(
            ParamPredicate(ColumnRef("emp", "hired"), 0),
            ParamPredicate(ColumnRef("dept", "budget"), 1),
        ),
    )


@pytest.fixture(scope="session")
def tiny_space(tiny_template, tiny_catalog) -> PlanSpace:
    return PlanSpace(tiny_template, tiny_catalog, seed=0)


@pytest.fixture(scope="session")
def q1_space() -> PlanSpace:
    return plan_space_for("Q1")


@pytest.fixture(scope="session")
def q5_space() -> PlanSpace:
    return plan_space_for("Q5")


@pytest.fixture(scope="session")
def q1_pool(q1_space) -> SamplePool:
    return sample_labeled_pool(q1_space, 1000, seed=42)


@pytest.fixture(scope="session")
def q1_test(q1_space):
    points = sample_points(q1_space.dimensions, 500, seed=43)
    return points, q1_space.plan_at(points)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
