"""The value-level plan-caching service."""

import numpy as np
import pytest

from repro.config import PPCConfig
from repro.exceptions import ConfigurationError, WorkloadError
from repro.service import PlanCachingService
from repro.workload import QueryInstance, RandomTrajectoryWorkload


@pytest.fixture(scope="module")
def service():
    service = PlanCachingService.tpch(
        scale_factor=0.1,
        config=PPCConfig(confidence_threshold=0.8, drift_response=False),
        seed=0,
    )
    service.register("Q1")
    return service


class TestLifecycle:
    def test_registration(self, service):
        assert service.templates == ["Q1"]

    def test_double_registration_rejected(self, service):
        with pytest.raises(ConfigurationError):
            service.register("Q1")

    def test_unregistered_execution_rejected(self, service):
        with pytest.raises(WorkloadError):
            service.execute(QueryInstance("Q3", (1.0, 2.0, 3.0)))

    def test_mismatched_statistics_rejected(self):
        from repro.tpch import build_catalog, build_statistics

        catalog_a = build_catalog(0.01)
        catalog_b = build_catalog(0.01)
        stats_b = build_statistics(catalog_b, seed=0, gaussian_samples=500)
        with pytest.raises(ConfigurationError):
            PlanCachingService(catalog_a, stats_b)


class TestExecution:
    def test_value_level_round_trip(self, service):
        """instance_at and execute agree: executing the instance placed
        at a point reports (approximately) that point's optimal plan."""
        point = np.array([0.3, 0.6])
        instance = service.instance_at("Q1", point)
        record = service.execute(instance)
        assert record.template == "Q1"
        assert record.executed_plan >= 0
        # The bound point round-trips near the requested location.
        assert record.point == pytest.approx(point, abs=0.03)

    def test_workload_produces_caching_benefit(self, service):
        workload = RandomTrajectoryWorkload(2, spread=0.02, seed=5).generate(
            400
        )
        for point in workload:
            service.execute(service.instance_at("Q1", point))
        report = service.report()["Q1"]
        assert report["invocation_rate"] < 0.9
        assert report["precision"] > 0.9
        assert report["space_bytes"] > 0

    def test_report_covers_all_templates(self, service):
        report = service.report()
        assert set(report) == {"Q1"}
        assert {"instances", "precision", "recall"} <= set(report["Q1"])
