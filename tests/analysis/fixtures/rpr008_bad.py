"""Reaching into a session/framework and rewriting its state."""


def tamper(framework, session):
    framework.session("Q1").optimizer_invocations = 0
    session.records = []
    del framework.sessions
