"""Tolerance-based comparison; integer equality stays exact."""
import math


def on_boundary(distance: float, radius: float) -> bool:
    return math.isclose(distance, 0.5, abs_tol=1e-9) or not math.isclose(
        radius, 1.0, abs_tol=1e-9
    )


def same_cell(a: int, b: int) -> bool:
    return a == b
