"""Known blind spots of the per-file linter — fixed or fenced.

Two historical gaps: (a) ``# repro: noqa`` was keyed to a single
physical line, so a statement black wrapped across lines could only be
suppressed by putting the comment on the exact line the rule anchored
to; (b) import-alias resolution stopped at the local module's tables,
so a banned call laundered through a ``from ... import x as y``
re-export was invisible.  (a) is fixed by range-aware suppression —
with a deliberate carve-out for block-opening nodes; (b) stays a
per-file blind spot by design and the whole-program engine closes it.
"""

from repro.analysis import lint_source
from repro.analysis.effects import build_project_from_sources


class TestMultiLineStatementNoqa:
    WRAPPED = (
        "import time\n"
        "time.sleep(\n"
        "    1.0\n"
        ")\n"
    )

    def test_unsuppressed_wrapped_call_still_fires(self):
        findings = lint_source(self.WRAPPED, module="repro.core.scratch")
        assert [f.rule for f in findings] == ["RPR002"]

    def test_noqa_on_anchor_line(self):
        source = (
            "import time\n"
            "time.sleep(  # repro: noqa[RPR002]\n"
            "    1.0\n"
            ")\n"
        )
        assert lint_source(source, module="repro.core.scratch") == []

    def test_noqa_on_closing_paren_line(self):
        source = (
            "import time\n"
            "time.sleep(\n"
            "    1.0\n"
            ")  # repro: noqa[RPR002]\n"
        )
        assert lint_source(source, module="repro.core.scratch") == []

    def test_noqa_on_interior_line(self):
        source = (
            "import time\n"
            "time.sleep(\n"
            "    1.0  # repro: noqa[RPR002]\n"
            ")\n"
        )
        assert lint_source(source, module="repro.core.scratch") == []

    def test_suppression_stays_statement_scoped(self):
        source = (
            "import time\n"
            "time.sleep(\n"
            "    1.0\n"
            ")  # repro: noqa[RPR002]\n"
            "time.sleep(2.0)\n"
        )
        findings = lint_source(source, module="repro.core.scratch")
        assert [(f.rule, f.line) for f in findings] == [("RPR002", 5)]


class TestBlockNodesStayHeaderScoped:
    """RPR007 anchors at the ``def`` whose *range* is the whole body —
    a ``noqa`` on some body line must not silence the signature rule."""

    def test_body_noqa_does_not_suppress_def_anchored_rule(self):
        source = (
            "def api(value):\n"
            "    x = 1  # repro: noqa[RPR007]\n"
            "    return x + value\n"
        )
        findings = lint_source(source, module="repro.core.scratch")
        assert [f.rule for f in findings] == ["RPR007"]

    def test_def_line_noqa_does_suppress_it(self):
        source = (
            "def api(value):  # repro: noqa[RPR007]\n"
            "    return value\n"
        )
        assert lint_source(source, module="repro.core.scratch") == []


class TestReexportBlindSpot:
    """``from repro.util.entropy import jitter as fuzz`` then calling
    ``fuzz()``: per-file RPR001 sees a call to an unknown project name
    and stays quiet — that is its documented per-file boundary.  The
    whole-program engine resolves the alias to the defining module and
    carries the effect through."""

    FACADE = (
        "from repro.util.entropy import jitter as fuzz\n"
        "def sample():\n"
        "    return fuzz()\n"
    )
    ENTROPY = (
        "import random\n"
        "def jitter():\n"
        "    return random.random()\n"
    )

    def test_per_file_linter_misses_the_laundered_rng(self):
        findings = lint_source(self.FACADE, module="repro.workload.facade")
        assert [f for f in findings if f.rule == "RPR001"] == []

    def test_effects_engine_resolves_through_the_alias(self):
        project = build_project_from_sources(
            {
                "repro.workload.facade": self.FACADE,
                "repro.util.entropy": self.ENTROPY,
            }
        )
        info = project.functions["repro.workload.facade.sample"]
        (call,) = info.calls
        assert call.resolved == "repro.util.entropy.jitter"
        assert "rng" in info.effects
