"""Property-based operator invariants (hypothesis).

Assumption 2 of the paper (plan cost predictability) only holds if the
substrate's cost formulas are smooth and monotone in the predicate
selectivities.  These properties pin that down for every operator.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.cost_model import CostModel
from repro.optimizer.operators import (
    HashJoin,
    IndexNLJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
    Sort,
)

MODEL = CostModel()
sels = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)


def _operators():
    scan_a = SeqScan("a", 100_000, 1_563, (0,), MODEL)
    scan_b = IndexScan("b", "ix", 1, 50_000, 782, (), False, MODEL)
    return {
        "seqscan": scan_a,
        "indexscan": scan_b,
        "sort": Sort(scan_a, "a.x", MODEL),
        "hash": HashJoin(scan_a, scan_b, 1e-4, MODEL),
        "nl": NestedLoopJoin(scan_a, scan_b, 1e-4, MODEL),
        "merge": MergeJoin(
            Sort(scan_a, "a.k", MODEL), Sort(scan_b, "b.k", MODEL),
            1e-4, MODEL, order="a.k",
        ),
        "idxnl": IndexNLJoin(
            scan_a, "b", "pk_b", 50_000, (1,), 1.0 / 50_000, MODEL
        ),
    }


@pytest.mark.parametrize("name", list(_operators()))
class TestOperatorInvariants:
    @given(s0=sels, s1=sels)
    @settings(max_examples=40, deadline=None)
    def test_rows_and_costs_nonnegative_finite(self, name, s0, s1):
        node = _operators()[name]
        rows, cost = node.evaluate(np.array([[s0, s1]]))
        assert np.isfinite(rows).all() and np.isfinite(cost).all()
        assert (rows >= 0).all()
        assert (cost > 0).all()

    @given(s0=sels, s1=sels, bump=st.floats(1.01, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_each_selectivity(self, name, s0, s1, bump):
        """More selected rows never makes a plan cheaper or smaller."""
        node = _operators()[name]
        base = np.array([[s0, s1]])
        for axis in range(2):
            raised = base.copy()
            raised[0, axis] = min(1.0, raised[0, axis] * bump)
            rows_lo, cost_lo = node.evaluate(base)
            rows_hi, cost_hi = node.evaluate(raised)
            assert rows_hi[0] >= rows_lo[0] - 1e-9
            assert cost_hi[0] >= cost_lo[0] - 1e-9

    @given(s0=sels, s1=sels)
    @settings(max_examples=40, deadline=None)
    def test_vectorized_matches_scalar(self, name, s0, s1):
        node = _operators()[name]
        points = np.array([[s0, s1], [s1, s0], [0.5, 0.5]])
        batch_rows, batch_cost = node.evaluate(points)
        for i in range(3):
            rows, cost = node.evaluate(points[i : i + 1])
            assert rows[0] == pytest.approx(batch_rows[i])
            assert cost[0] == pytest.approx(batch_cost[i])

    @given(s0=sels, s1=sels, epsilon=st.floats(1e-4, 1e-2))
    @settings(max_examples=40, deadline=None)
    def test_cost_locally_smooth(self, name, s0, s1, epsilon):
        """Small selectivity perturbations cause proportionally bounded
        relative cost changes — the substrate-side basis of the paper's
        plan cost predictability assumption."""
        node = _operators()[name]
        base = np.array([[s0, s1]])
        nudged = np.clip(base * (1.0 + epsilon), 1e-6, 1.0)
        __, cost_base = node.evaluate(base)
        __, cost_nudged = node.evaluate(nudged)
        ratio = cost_nudged[0] / cost_base[0]
        # A (1 + eps) multiplicative nudge moves cost by at most
        # roughly (1 + eps)^2 (quadratic operators), plus the one
        # discontinuity budget (hash spill step).
        assert ratio <= (1.0 + epsilon) ** 2 * 1.6 + 1e-9
