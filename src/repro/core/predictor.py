"""Common predictor interface.

Every plan-prediction algorithm — the Section III comparators, the four
approximation levels of Section IV, and the online variant — answers
the same question: *given a plan-space point, which plan would the
optimizer choose, or NULL if unsure* (the output model of Section
II-B).  :class:`PlanPredictor` fixes that interface so experiments can
treat algorithms uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.exceptions import PredictionError


@dataclass(frozen=True)
class Prediction:
    """A non-NULL prediction: the plan, the confidence behind it, and —
    when the predictor tracks costs — the expected execution cost of
    the plan at the predicted point (used by negative feedback)."""

    plan_id: int
    confidence: float
    estimated_cost: "float | None" = None


def median_supported(
    values: np.ndarray, supported: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Column-wise median of ``values (t, m)`` over the ``supported``
    entries.

    The vectorized form of "median per-transform average cost over the
    transforms that actually hold mass for the winning plan".  Returns
    ``(medians, any_support)``: columns with no supported transform get
    a NaN median and ``any_support`` False (the caller maps those to an
    absent cost estimate).
    """
    masked = np.where(supported, values, np.nan)
    medians = np.full(values.shape[1], np.nan)
    any_support = supported.any(axis=0)
    if any_support.any():
        medians[any_support] = np.nanmedian(
            masked[:, any_support], axis=0
        )
    return medians, any_support


class PlanPredictor(ABC):
    """Interface shared by every plan-prediction algorithm."""

    #: Dimensionality ``r`` of the plan space the predictor serves.
    dimensions: int

    @abstractmethod
    def predict(self, x: np.ndarray) -> "Prediction | None":
        """Predict the optimizer's plan at ``x`` (``None`` = NULL)."""

    def predict_batch(self, points: np.ndarray) -> list["Prediction | None"]:
        """Predict for many points; subclasses may vectorize.

        The batch contract all implementations share: an empty
        ``(0, r)`` batch returns ``[]``, a 1-D input must be exactly one
        ``r``-dimensional point (so a ``(0,)`` vector is a shape error,
        not a silently promoted ``(1, 0)`` batch), and any non-finite
        coordinate raises :class:`PredictionError` up front — the same
        guard scalar :meth:`predict` applies per point.
        """
        points = self._check_batch(points)
        return [self.predict(points[i]) for i in range(points.shape[0])]

    @abstractmethod
    def space_bytes(self) -> int:
        """Memory footprint under the paper's space-accounting model
        (Table I)."""

    def _check_point(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.shape[0] != self.dimensions:
            # Callers and tests pin ValueError for shape mismatches.
            raise ValueError(  # repro: noqa[RPR104] - shape contract
                f"expected a {self.dimensions}-dimensional point, "
                f"got {x.shape[0]}"
            )
        if not np.isfinite(x).all():
            raise PredictionError(
                "plan-space point contains NaN or infinity"
            )
        return x

    def _check_batch(self, points: np.ndarray) -> np.ndarray:
        """Validate a point batch into a ``(m, r)`` float matrix.

        Shape errors raise :class:`ValueError`; non-finite coordinates
        raise :class:`PredictionError`, mirroring :meth:`_check_point`
        so a batch can never sneak past the scalar guard.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            if points.shape[0] != self.dimensions:
                raise ValueError(  # repro: noqa[RPR104] - shape contract
                    f"expected a {self.dimensions}-dimensional point, "
                    f"got shape {points.shape}"
                )
            points = points[None, :]
        elif points.ndim != 2:
            raise ValueError(  # repro: noqa[RPR104] - shape contract
                f"expected an (m, {self.dimensions}) batch, "
                f"got shape {points.shape}"
            )
        if points.shape[1] != self.dimensions:
            raise ValueError(  # repro: noqa[RPR104] - shape contract
                f"expected {self.dimensions}-dimensional points, "
                f"got shape {points.shape}"
            )
        if points.shape[0] and not np.isfinite(points).all():
            raise PredictionError(
                "point batch contains NaN or infinity"
            )
        return points
