"""Plan-space diagnostics: quantifying plan-diagram structure.

The plan-diagram literature the paper cites (Reddy & Haritsa)
characterizes optimizer behaviour through the *structure* of plan
diagrams — how many plans, how skewed their areas, how convoluted
their boundaries.  This module computes those statistics for any
:class:`~repro.optimizer.plan_space.PlanSpace`, giving the experiments
a quantitative vocabulary for "this space is harder than that one":

* **area distribution** and its Gini coefficient (plan-space skew);
* **boundary fraction** — how much of the space sits within one probe
  step of a plan boundary (the region where density prediction is
  genuinely unsafe);
* **per-axis transition rates** — how strongly each parameter drives
  plan changes (the oracle-side counterpart of the sample-based
  :class:`~repro.core.relevance.ParameterRelevanceAnalyzer`);
* **predictability curve** — P(same plan) at increasing distances, the
  quantity behind Assumption 1 and Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import as_generator


@dataclass(frozen=True)
class PlanSpaceProfile:
    """Structural statistics of one template's plan space."""

    template: str
    dimensions: int
    plan_count: int
    observed_plans: int
    area_fractions: dict[int, float]
    gini: float
    boundary_fraction: float
    axis_transition_rates: tuple[float, ...]
    predictability: dict[float, float]

    @property
    def dominant_plan(self) -> int:
        return max(self.area_fractions, key=self.area_fractions.get)

    def summary(self) -> str:
        """One readable paragraph of the profile."""
        rates = ", ".join(f"{r:.2f}" for r in self.axis_transition_rates)
        nearest = min(self.predictability)
        return (
            f"{self.template}: {self.observed_plans} plans observed over "
            f"[0,1]^{self.dimensions}; dominant plan covers "
            f"{self.area_fractions[self.dominant_plan]:.0%} "
            f"(area Gini {self.gini:.2f}); {self.boundary_fraction:.0%} of "
            f"the space lies near a boundary; per-axis transition rates "
            f"[{rates}]; P(same plan | d={nearest}) = "
            f"{self.predictability[nearest]:.2f}"
        )


def profile_plan_space(
    plan_space,
    samples: int = 4000,
    boundary_step: float = 0.02,
    axis_probes: int = 16,
    distances: tuple[float, ...] = (0.01, 0.05, 0.1),
    seed: "int | None" = 7,
) -> PlanSpaceProfile:
    """Probe a plan space and compute its structural profile."""
    if samples < 10:
        raise ConfigurationError("need at least 10 samples")
    rng = as_generator(seed)
    dims = plan_space.dimensions
    points = rng.uniform(0.0, 1.0, size=(samples, dims))
    ids = plan_space.plan_at(points)

    unique, counts = np.unique(ids, return_counts=True)
    fractions = {int(u): float(c) / samples for u, c in zip(unique, counts, strict=True)}

    # Gini over observed plan areas.
    areas = np.sort(counts / samples)
    n = areas.size
    gini = float(
        (2.0 * np.arange(1, n + 1) - n - 1.0) @ areas / (n * areas.sum())
    ) if n > 1 else 0.0

    # Boundary proximity: a random step of `boundary_step` flips the plan.
    directions = rng.standard_normal((samples, dims))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    neighbors = np.clip(points + boundary_step * directions, 0.0, 1.0)
    boundary_fraction = float(
        (plan_space.plan_at(neighbors) != ids).mean()
    )

    # Per-axis transition rates from random axis-parallel sweeps.
    rates = []
    for axis in range(dims):
        transitions = 0
        for __ in range(axis_probes):
            sweep = np.tile(rng.uniform(0.0, 1.0, dims), (64, 1))
            sweep[:, axis] = np.linspace(0.0, 1.0, 64)
            sweep_ids = plan_space.plan_at(sweep)
            transitions += int((np.diff(sweep_ids) != 0).sum())
        rates.append(transitions / axis_probes)

    # Predictability curve (Assumption 1).
    predictability = {}
    for distance in distances:
        offsets = rng.standard_normal((samples, dims))
        offsets /= np.linalg.norm(offsets, axis=1, keepdims=True)
        radii = distance * rng.random(samples) ** (1.0 / dims)
        near = np.clip(points + offsets * radii[:, None], 0.0, 1.0)
        predictability[distance] = float(
            (plan_space.plan_at(near) == ids).mean()
        )

    return PlanSpaceProfile(
        template=plan_space.template.name,
        dimensions=dims,
        plan_count=plan_space.plan_count,
        observed_plans=len(unique),
        area_fractions=fractions,
        gini=gini,
        boundary_fraction=boundary_fraction,
        axis_transition_rates=tuple(rates),
        predictability=predictability,
    )
