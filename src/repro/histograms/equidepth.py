"""Equi-depth histogram: bucket boundaries at data quantiles.

Every bucket receives (as close as possible to) the same number of
points, which adapts boundaries to dense regions — the property that
lets a small number of buckets summarize the sharply clustered z-order
distributions in Figure 6 of the paper.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import HistogramError
from repro.histograms.base import Bucket, Histogram


class EquiDepthHistogram(Histogram):
    """Histogram whose buckets hold equal shares of the input mass."""

    @classmethod
    def build(
        cls,
        values: Sequence[float],
        costs: Sequence[float] | None = None,
        bucket_count: int = 40,
        domain: tuple[float, float] = (0.0, 1.0),
    ) -> "EquiDepthHistogram":
        if bucket_count < 1:
            raise HistogramError("bucket_count must be >= 1")
        hist = cls(domain)
        data = np.asarray(values, dtype=float)
        if data.size == 0:
            return hist
        lo, hi = hist.domain
        if data.min() < lo or data.max() > hi:
            raise HistogramError("values outside histogram domain")
        if costs is None:
            cost_data = np.zeros_like(data)
        else:
            cost_data = np.asarray(costs, dtype=float)
            if cost_data.shape != data.shape:
                raise HistogramError("values and costs must align")

        order = np.argsort(data, kind="stable")
        data = data[order]
        cost_data = cost_data[order]

        effective = min(bucket_count, data.size)
        # Quantile edges; first/last edges snap to the actual data range so
        # that no bucket extends into empty space (which would dilute the
        # continuous-values interpolation).
        positions = np.linspace(0, data.size, effective + 1).astype(int)
        for i in range(effective):
            start, stop = positions[i], positions[i + 1]
            if start == stop:
                continue
            chunk = data[start:stop]
            bucket = Bucket(
                lo=float(chunk[0]),
                hi=float(chunk[-1]),
                count=float(stop - start),
                cost_sum=float(cost_data[start:stop].sum()),
            )
            hist.buckets.append(bucket)
        return hist
