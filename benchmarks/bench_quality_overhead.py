"""Quality-telemetry sampling overhead on the serving path.

Three identically seeded frameworks run the same trajectory workload
in lockstep on virtual clocks advancing one simulated second per
instance: telemetry disabled, the shipped default (snapshot every 5
simulated seconds, scorecard refresh every 12th snapshot), and an
aggressive cadence (snapshot every second, scorecard every 4th).
Telemetry is read-only over session state and consumes no RNG, so all
three make bit-identical decisions and the comparison isolates pure
sampling cost.

The acceptance bar: the shipped default must stay within 5 % of the
untelemetered baseline on this storm-shaped workload — the ISSUE 5
gate for leaving cache-quality telemetry always-on.
"""

from time import perf_counter

from _bench_utils import write_bench_json, write_result
from repro.config import PPCConfig, TelemetryConfig
from repro.core.framework import PPCFramework
from repro.obs import names as metric_names
from repro.resilience import VirtualClock
from repro.tpch import plan_space_for
from repro.workload import RandomTrajectoryWorkload

WARMUP = 500
PROBES = 1500
REPEATS = 3
ADVANCE = 1.0  # simulated seconds per instance

MODES = (
    ("off", TelemetryConfig(enabled=False)),
    ("sampled", TelemetryConfig()),  # shipped default: 5 s / every 12th
    ("aggressive", TelemetryConfig(sample_interval=1.0, quality_every=4)),
)


def _framework(telemetry: TelemetryConfig) -> "tuple[PPCFramework, VirtualClock]":
    clock = VirtualClock()
    config = PPCConfig(
        confidence_threshold=0.8,
        mean_invocation_probability=0.05,
        drift_response=False,
        telemetry=telemetry,
    )
    framework = PPCFramework(
        config, seed=17, clock=clock, sleep=clock.sleep
    )
    framework.register(plan_space_for("Q1"))
    return framework, clock


def _measure_modes() -> "tuple[dict[str, float], dict[str, PPCFramework]]":
    """Best-of-N per-instance seconds for each telemetry mode."""
    rigs = {name: _framework(cfg) for name, cfg in MODES}
    warm = RandomTrajectoryWorkload(2, spread=0.02, seed=5).generate(WARMUP)
    for x in warm:
        for framework, clock in rigs.values():
            framework.execute("Q1", x)
            clock.advance(ADVANCE)
    probes = RandomTrajectoryWorkload(2, spread=0.02, seed=6).generate(
        PROBES * REPEATS
    )
    best = dict.fromkeys(rigs, float("inf"))
    for repeat in range(REPEATS):
        batch = probes[repeat * PROBES : (repeat + 1) * PROBES]
        for name, (framework, clock) in rigs.items():
            t0 = perf_counter()
            for x in batch:
                framework.execute("Q1", x)
                clock.advance(ADVANCE)
            best[name] = min(best[name], (perf_counter() - t0) / PROBES)
    # Sanity: telemetry actually sampled in the instrumented modes, and
    # the decisions stayed bit-identical across all three.
    assert rigs["off"][0].telemetry is None
    assert rigs["sampled"][0].telemetry.sample_count > 0
    assert rigs["aggressive"][0].telemetry.sample_count > (
        rigs["sampled"][0].telemetry.sample_count
    )
    reference = [
        (r.executed_plan, r.optimizer_invoked)
        for r in rigs["off"][0].session("Q1").records
    ]
    for name, (framework, __) in rigs.items():
        assert [
            (r.executed_plan, r.optimizer_invoked)
            for r in framework.session("Q1").records
        ] == reference, f"mode {name} diverged"
    return best, {name: rig[0] for name, rig in rigs.items()}


def _predict_p95(framework: PPCFramework) -> float:
    digest = framework.metrics.histogram_summary(
        metric_names.STAGE_SECONDS, template="Q1", stage="predict"
    )
    return float(digest["p95"]) if digest else 0.0


def test_quality_overhead(benchmark):
    best, frameworks = benchmark.pedantic(
        _measure_modes, rounds=1, iterations=1
    )
    baseline = best["off"]
    lines = [
        "Quality-telemetry overhead on the serving path",
        f"(Q1, {WARMUP} warmup + {REPEATS}x{PROBES} probes, "
        f"{ADVANCE}s simulated per instance, best of {REPEATS})",
        "",
    ]
    modes_payload = {}
    for name, __ in MODES:
        overhead = best[name] / baseline - 1.0
        lines.append(
            f"{name:10s}: {best[name] * 1e6:8.2f} us/instance  "
            f"({overhead:+.1%} vs off)"
        )
        modes_payload[name] = {
            "us_per_instance": best[name] * 1e6,
            "overhead_pct": overhead * 100.0,
            "predict_p95_seconds": _predict_p95(frameworks[name]),
        }
    write_result("quality_overhead", lines)
    write_bench_json(
        "quality",
        {
            "bench": "quality_overhead",
            "workload": {
                "template": "Q1",
                "warmup": WARMUP,
                "probes": PROBES,
                "repeats": REPEATS,
                "advance_seconds": ADVANCE,
            },
            "modes": modes_payload,
            "gate": {"mode": "sampled", "max_overhead_pct": 5.0},
        },
    )
    # The shipped default must be cheap enough to leave on.
    assert best["sampled"] < 1.05 * baseline
