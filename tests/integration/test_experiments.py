"""Experiment drivers: every figure/table function runs and its output
has the paper's qualitative shape (scaled-down parameters for speed)."""

import numpy as np
import pytest

from repro.experiments.approximation import (
    run_bucket_sweep,
    run_confidence_sweep,
)
from repro.experiments.assumptions import run_assumption_validation
from repro.experiments.comparison import run_clustering_comparison
from repro.experiments.diagrams import (
    plan_diagram,
    trajectory_sample,
    transform_views,
    zorder_distributions,
)
from repro.experiments.drift import run_drift_detection, run_estimator_accuracy
from repro.experiments.online_perf import run_feedback_ablation
from repro.experiments.runtime_perf import run_runtime_comparison
from repro.experiments.tables import run_space_accounting, run_template_inventory


class TestComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_clustering_comparison(
            repeats=2, sample_size=400, test_size=400, radii=(0.05, 0.1)
        )

    def test_density_high_gamma_most_precise(self, rows):
        """Figure 3's headline: density with high gamma beats k-means."""
        by_name = {}
        for row in rows:
            by_name.setdefault(row.algorithm, []).append(row.precision)
        density = np.mean(by_name["density(g=0.95)"])
        kmeans = np.mean(by_name["k-means(c=40)"])
        assert density > kmeans

    def test_gamma_trades_recall_for_precision(self, rows):
        by_name = {}
        for row in rows:
            by_name.setdefault(row.algorithm, []).append(row)
        low = np.mean([r.recall for r in by_name["density(g=0.5)"]])
        high = np.mean([r.recall for r in by_name["density(g=0.95)"]])
        assert high <= low + 1e-9


class TestSweeps:
    def test_confidence_sweep_monotone_precision(self):
        rows = run_confidence_sweep(
            gammas=(0.5, 0.9), sample_size=800, test_size=300,
            radii=(0.05, 0.1),
        )
        assert rows[1].precision >= rows[0].precision - 0.02
        assert rows[1].recall <= rows[0].recall + 0.02

    def test_bucket_sweep_recall_grows(self):
        rows = run_bucket_sweep(
            bucket_counts=(5, 80), sample_size=800, test_size=300
        )
        assert rows[1].recall >= rows[0].recall
        # Precision stays roughly flat (the paper's key property).
        assert abs(rows[1].precision - rows[0].precision) < 0.1


class TestAssumptions:
    def test_predictability_decays_with_distance(self):
        rows = run_assumption_validation(
            templates=("Q1",),
            distances=(0.01, 0.2),
            test_points=30,
            neighbors_per_point=50,
        )
        close, far = rows[0], rows[1]
        assert close.same_plan_probability > 0.9
        assert close.same_plan_probability >= far.same_plan_probability
        assert 0.0 <= far.same_plan_lower_bound_95 <= far.same_plan_probability


class TestDrift:
    def test_estimator_accuracy_in_paper_ballpark(self):
        result = run_estimator_accuracy(sample_size=800, test_size=800)
        assert result.evaluated > 100
        # Paper reports ~72 %; accept a generous band around it.
        assert result.accuracy > 0.6

    def test_manipulation_drops_estimates_and_alarms(self):
        run = run_drift_detection(workload_size=700, seed=3)
        before = np.mean(
            run.precision_trace[
                run.manipulation_index - 100 : run.manipulation_index
            ]
        )
        after_slice = run.precision_trace[
            run.manipulation_index + 50 : run.manipulation_index + 250
        ]
        # Sudden drop in the precision estimate shortly after the
        # manipulation, and a total collapse of answered predictions.
        assert np.min(after_slice) < before - 0.04
        assert run.recall_after < 0.25 * run.recall_before
        # The monitor raises the drift alarm after the manipulation.
        assert run.alarm_index is not None
        assert run.alarm_index >= run.manipulation_index


class TestRuntime:
    def test_figure13_ordering(self, tiny_space):
        rows, breakdowns = run_runtime_comparison(
            templates=("Q1",), workload_size=300
        )
        by_regime = {r.regime: r for r in rows}
        assert by_regime["IDEAL"].total_ms <= by_regime["PPC"].total_ms
        assert by_regime["PPC"].total_ms < by_regime["NO-CACHING"].total_ms


class TestFeedbackAblation:
    def test_variants_all_run(self):
        runs = run_feedback_ablation(
            workload_size=300, repeats=1, seed=5
        )
        variants = {run.variant for run in runs}
        assert variants == {
            "full",
            "no-noise-elimination",
            "no-negative-feedback",
            "neither",
        }
        for run in runs:
            assert 0.0 <= run.precision <= 1.0


class TestTables:
    def test_space_accounting_ordering(self):
        rows = run_space_accounting(sample_size=800)
        by_name = {r.algorithm: r.measured_bytes for r in rows}
        # Histograms are the most compact of the LSH family.
        assert by_name["APPROXIMATE-LSH-HISTOGRAMS"] < by_name["APPROXIMATE-LSH"]
        assert by_name["BASELINE"] > 0

    def test_template_inventory(self):
        rows = run_template_inventory(probe_points=400)
        assert len(rows) == 9
        degrees = [r.parameter_degree for r in rows]
        assert min(degrees) == 2 and max(degrees) == 6
        assert all(r.estimated_plan_count >= 2 for r in rows)


class TestDiagrams:
    def test_plan_diagram_renders(self):
        diagram = plan_diagram("Q1", resolution=16)
        rendering = diagram.render()
        assert len(rendering.splitlines()) == 16
        assert sum(diagram.plan_fractions.values()) == pytest.approx(1.0)

    def test_transform_views(self):
        views = transform_views(transforms=2, samples=100)
        assert len(views) == 2
        assert views[0].projected.shape == (100, 2)

    def test_zorder_fragmentation_observed(self):
        distributions = zorder_distributions(samples=400)
        # Z-ordering splits at least one plan into multiple intervals —
        # the phenomenon motivating noise elimination.
        assert any(d.interval_count > 1 for d in distributions)

    def test_trajectory_sample_shape(self):
        workload = trajectory_sample(count=200)
        assert workload.shape == (200, 2)
