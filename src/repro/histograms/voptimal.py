"""V-Optimal histogram: boundaries minimizing total variance.

The V-Optimal(V, F) construction (Jagadish et al.) places bucket
boundaries so that the summed within-bucket variance of the frequency
distribution is minimal — provably the best piecewise-constant
approximation for a given bucket budget.  It costs a dynamic program
(O(n^2 b) over distinct values), so real systems approximate it with
MaxDiff; having the exact optimum in the family lets the histogram
ablation quantify how much MaxDiff leaves on the table.

Here the point set is summarized by its distinct values and their
multiplicities; the DP minimizes the variance of the *positions* inside
each bucket (weighted by multiplicity), which directly bounds the
continuous-values interpolation error of range queries.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import HistogramError
from repro.histograms.base import Bucket, Histogram

#: Above this many distinct values the input is pre-aggregated onto a
#: quantile grid to keep the O(n^2 b) dynamic program tractable.
MAX_DISTINCT = 512


class VOptimalHistogram(Histogram):
    """Histogram with variance-optimal bucket boundaries."""

    @classmethod
    def build(
        cls,
        values: Sequence[float],
        costs: "Sequence[float] | None" = None,
        bucket_count: int = 40,
        domain: tuple[float, float] = (0.0, 1.0),
    ) -> "VOptimalHistogram":
        if bucket_count < 1:
            raise HistogramError("bucket_count must be >= 1")
        hist = cls(domain)
        data = np.asarray(values, dtype=float)
        if data.size == 0:
            return hist
        lo, hi = hist.domain
        if data.min() < lo or data.max() > hi:
            raise HistogramError("values outside histogram domain")
        if costs is None:
            cost_data = np.zeros_like(data)
        else:
            cost_data = np.asarray(costs, dtype=float)
            if cost_data.shape != data.shape:
                raise HistogramError("values and costs must align")

        order = np.argsort(data, kind="stable")
        data = data[order]
        cost_data = cost_data[order]

        # Aggregate to (distinct value, count, cost sum) triples.
        distinct, start_index, counts = np.unique(
            data, return_index=True, return_counts=True
        )
        cost_sums = np.add.reduceat(cost_data, start_index)
        if distinct.size > MAX_DISTINCT:
            distinct, counts, cost_sums = _coarsen(
                distinct, counts, cost_sums, MAX_DISTINCT
            )

        boundaries = _voptimal_boundaries(
            distinct, counts, min(bucket_count, distinct.size)
        )
        for start, stop in boundaries:
            hist.buckets.append(
                Bucket(
                    lo=float(distinct[start]),
                    hi=float(distinct[stop - 1]),
                    count=float(counts[start:stop].sum()),
                    cost_sum=float(cost_sums[start:stop].sum()),
                )
            )
        return hist


def _coarsen(
    values: np.ndarray,
    counts: np.ndarray,
    cost_sums: np.ndarray,
    target: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pre-aggregate onto at most ``target`` groups of adjacent values."""
    groups = np.linspace(0, values.size, target + 1).astype(int)
    new_values, new_counts, new_costs = [], [], []
    for start, stop in zip(groups, groups[1:], strict=False):
        if start == stop:
            continue
        mass = counts[start:stop].sum()
        centroid = float(
            (values[start:stop] * counts[start:stop]).sum() / mass
        )
        new_values.append(centroid)
        new_counts.append(mass)
        new_costs.append(cost_sums[start:stop].sum())
    return (
        np.array(new_values),
        np.array(new_counts),
        np.array(new_costs),
    )


def _voptimal_boundaries(
    values: np.ndarray, counts: np.ndarray, buckets: int
) -> list[tuple[int, int]]:
    """Optimal ``[start, stop)`` index ranges by dynamic programming.

    Minimizes the summed weighted variance of values within buckets
    using prefix sums for O(1) per-interval cost.
    """
    n = values.size
    weight = counts.astype(float)
    prefix_w = np.concatenate([[0.0], np.cumsum(weight)])
    prefix_wx = np.concatenate([[0.0], np.cumsum(weight * values)])
    prefix_wx2 = np.concatenate([[0.0], np.cumsum(weight * values**2)])

    def interval_error(i: int, j: int) -> float:
        """Weighted variance of values[i:j]."""
        w = prefix_w[j] - prefix_w[i]
        if w <= 0.0:
            return 0.0
        wx = prefix_wx[j] - prefix_wx[i]
        wx2 = prefix_wx2[j] - prefix_wx2[i]
        return max(0.0, wx2 - wx * wx / w)

    # dp[b][j]: minimal error covering values[:j] with b buckets.
    dp = np.full((buckets + 1, n + 1), np.inf)
    choice = np.zeros((buckets + 1, n + 1), dtype=np.int64)
    dp[0, 0] = 0.0
    for b in range(1, buckets + 1):
        for j in range(b, n + 1):
            best = np.inf
            best_i = b - 1
            for i in range(b - 1, j):
                if dp[b - 1, i] == np.inf:
                    continue
                error = dp[b - 1, i] + interval_error(i, j)
                if error < best:
                    best = error
                    best_i = i
            dp[b, j] = best
            choice[b, j] = best_i

    boundaries: list[tuple[int, int]] = []
    j = n
    for b in range(buckets, 0, -1):
        i = int(choice[b, j])
        boundaries.append((i, j))
        j = i
    boundaries.reverse()
    return [pair for pair in boundaries if pair[0] < pair[1]]
