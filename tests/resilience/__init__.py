"""Resilience layer: faults, retry, breaker, guarded flow, recovery."""
