"""StackedEnsemble mirrors the per-transform path bit for bit.

The struct-of-arrays view exists purely for throughput: every value it
produces must be bitwise equal to looping the individual
``PlanSpaceTransform`` / ``Grid`` / ``ZOrderCurve`` operations, or the
scalar/batch parity guarantee upstream falls apart.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.lsh import Grid, StackedEnsemble, TransformEnsemble, ZOrderCurve
from repro.workload import sample_points


def _build(transforms=5, dims=2, resolution=8, seed=3, output_dims=None):
    ensemble = TransformEnsemble(
        transforms,
        dims,
        output_dims=output_dims,
        resolution=resolution,
        seed=seed,
    )
    grids = [
        Grid(*transform.output_bounds, resolution)
        for transform in ensemble
    ]
    return ensemble, grids


class TestTransform:
    @pytest.mark.parametrize("dims", [2, 3, 4])
    def test_bitwise_equal_to_per_transform_apply(self, dims):
        ensemble, grids = _build(dims=dims, seed=dims)
        stacked = StackedEnsemble(ensemble, grids)
        points = sample_points(dims, 50, seed=7)
        transformed = stacked.transform(points)
        assert transformed.shape == (
            len(ensemble),
            50,
            stacked.output_dims,
        )
        for i, transform in enumerate(ensemble):
            assert np.array_equal(transformed[i], transform.apply(points))

    def test_batch_of_one_equals_row_of_batch(self):
        """The parity keystone: a 1-point batch computes the exact bits
        of the same point inside a larger batch."""
        ensemble, grids = _build()
        stacked = StackedEnsemble(ensemble, grids)
        points = sample_points(2, 30, seed=8)
        full = stacked.transform(points)
        for j in [0, 13, 29]:
            single = stacked.transform(points[j : j + 1])
            assert np.array_equal(single[:, 0, :], full[:, j, :])

    def test_origin_and_boundaries(self):
        ensemble, grids = _build()
        stacked = StackedEnsemble(ensemble, grids)
        points = np.array(
            [[0.5, 0.5], [0.0, 0.0], [1.0, 1.0], [0.0, 1.0]]
        )
        transformed = stacked.transform(points)
        for i, transform in enumerate(ensemble):
            assert np.array_equal(transformed[i], transform.apply(points))


class TestCellIds:
    def test_bitwise_equal_to_grid_cell_ids(self):
        ensemble, grids = _build()
        stacked = StackedEnsemble(ensemble, grids)
        points = sample_points(2, 80, seed=9)
        ids = stacked.cell_ids(points)
        assert ids.dtype == np.int64
        for i, (transform, grid) in enumerate(
            zip(ensemble, grids, strict=True)
        ):
            assert np.array_equal(
                ids[i], grid.cell_ids(transform.apply(points))
            )

    def test_out_of_grid_points_clip_like_grid(self):
        ensemble, grids = _build()
        stacked = StackedEnsemble(ensemble, grids)
        points = np.array([[-3.0, 5.0], [10.0, -10.0]])
        ids = stacked.cell_ids(points)
        for i, (transform, grid) in enumerate(
            zip(ensemble, grids, strict=True)
        ):
            assert np.array_equal(
                ids[i], grid.cell_ids(transform.apply(points))
            )


class TestZValues:
    def test_bitwise_equal_to_unit_coords_plus_linearize(self):
        ensemble, grids = _build(resolution=16)
        curve = ZOrderCurve(2, 4)
        stacked = StackedEnsemble(ensemble, grids, curve=curve)
        points = sample_points(2, 80, seed=10)
        z_values = stacked.z_values(points)
        for i, (transform, grid) in enumerate(
            zip(ensemble, grids, strict=True)
        ):
            expected = curve.linearize(
                grid.unit_coords(transform.apply(points))
            )
            assert np.array_equal(z_values[i], expected)

    def test_requires_a_curve(self):
        ensemble, grids = _build()
        stacked = StackedEnsemble(ensemble, grids)
        with pytest.raises(ConfigurationError):
            stacked.z_values(sample_points(2, 4, seed=0))


class TestValidation:
    def test_grid_count_must_match_ensemble(self):
        ensemble, grids = _build()
        with pytest.raises(ConfigurationError):
            StackedEnsemble(ensemble, grids[:-1])
