"""The value-level plan-caching service."""

import json

import numpy as np
import pytest

from repro.config import PPCConfig
from repro.exceptions import ConfigurationError, WorkloadError
from repro.service import PlanCachingService
from repro.workload import QueryInstance, RandomTrajectoryWorkload


@pytest.fixture(scope="module")
def service():
    service = PlanCachingService.tpch(
        scale_factor=0.1,
        config=PPCConfig(confidence_threshold=0.8, drift_response=False),
        seed=0,
    )
    service.register("Q1")
    return service


class TestLifecycle:
    def test_registration(self, service):
        assert service.templates == ["Q1"]

    def test_double_registration_rejected(self, service):
        with pytest.raises(ConfigurationError):
            service.register("Q1")

    def test_unregistered_execution_rejected(self, service):
        with pytest.raises(WorkloadError):
            service.execute(QueryInstance("Q3", (1.0, 2.0, 3.0)))

    def test_mismatched_statistics_rejected(self):
        from repro.tpch import build_catalog, build_statistics

        catalog_a = build_catalog(0.01)
        catalog_b = build_catalog(0.01)
        stats_b = build_statistics(catalog_b, seed=0, gaussian_samples=500)
        with pytest.raises(ConfigurationError):
            PlanCachingService(catalog_a, stats_b)


class TestExecution:
    def test_value_level_round_trip(self, service):
        """instance_at and execute agree: executing the instance placed
        at a point reports (approximately) that point's optimal plan."""
        point = np.array([0.3, 0.6])
        instance = service.instance_at("Q1", point)
        record = service.execute(instance)
        assert record.template == "Q1"
        assert record.executed_plan >= 0
        # The bound point round-trips near the requested location.
        assert record.point == pytest.approx(point, abs=0.03)

    def test_workload_produces_caching_benefit(self, service):
        workload = RandomTrajectoryWorkload(2, spread=0.02, seed=5).generate(
            400
        )
        for point in workload:
            service.execute(service.instance_at("Q1", point))
        report = service.report()["Q1"]
        assert report["invocation_rate"] < 0.9
        assert report["precision"] > 0.9
        assert report["space_bytes"] > 0

    def test_report_covers_all_templates(self, service):
        report = service.report()
        assert set(report) == {"Q1"}
        assert {"instances", "precision", "recall"} <= set(report["Q1"])


class TestMetrics:
    def test_metrics_snapshot_after_mixed_workload(self, service):
        workload = RandomTrajectoryWorkload(2, spread=0.02, seed=9).generate(
            100
        )
        for point in workload:
            service.execute(service.instance_at("Q1", point))
        snapshot = service.metrics()
        json.dumps(snapshot)  # must be JSON-ready

        q1 = snapshot["templates"]["Q1"]
        assert q1["executions"] >= 100
        # Per-stage latency digests with p50/p95.
        predict = q1["stage_seconds"]["predict"]
        assert predict["count"] == q1["executions"]
        assert {"p50", "p95", "p99", "count", "sum"} <= set(predict)
        assert predict["p95"] >= predict["p50"] >= 0.0
        # Invocation reasons tile the optimizer invocations exactly.
        reasons = q1["invocation_reasons"]
        assert set(reasons) == {
            "null_prediction",
            "exploration",
            "cache_miss",
            "negative_feedback",
        }
        assert sum(reasons.values()) == q1["optimizer_invocations"]
        # Cache hit rate and synopsis footprint.
        assert 0.0 <= q1["cache"]["hit_rate"] <= 1.0
        assert q1["cache"]["hits"] > 0
        assert q1["synopsis_bytes"] > 0
        assert q1["predictor"]["transform_seconds"]["count"] >= 100
        # No budget configured: governor section absent.
        assert snapshot["governor"] is None
        assert {"counters", "gauges", "histograms"} <= set(
            snapshot["registry"]
        )

    def test_prometheus_exposition(self, service):
        text = service.prometheus()
        assert "# TYPE ppc_stage_seconds summary" in text
        assert 'ppc_executions_total{template="Q1"}' in text
        assert 'ppc_synopsis_bytes{template="Q1"}' in text
        assert 'quantile="0.95"' in text

    def test_governor_section_present_with_budget(self):
        service = PlanCachingService.tpch(
            scale_factor=0.1,
            config=PPCConfig(drift_response=False),
            memory_budget_bytes=10**9,
            seed=0,
        )
        service.register("Q1")
        governor = service.metrics()["governor"]
        assert governor == {
            "budget_bytes": 10**9,
            "total_bytes": governor["total_bytes"],
            "reclaimed_bytes": 0,
            "shrinks": 0,
            "drops": 0,
        }


class TestTracing:
    def test_explain_returns_forced_trace(self, service):
        instance = service.instance_at("Q1", np.array([0.4, 0.6]))
        trace = service.explain(instance)
        assert trace.decision == "forced"
        assert trace.template == "Q1"
        span_names = {span.name for span in trace.spans()}
        assert {"normalize", "predict"} <= span_names
        assert trace.outcome is not None
        assert trace.outcome["executed_plan"] >= 0

    def test_explain_rejects_unregistered_template(self, service):
        with pytest.raises(WorkloadError):
            service.explain(QueryInstance("Q3", (1.0, 2.0, 3.0)))

    def test_traces_accessor(self, service):
        assert service.traces("Q1") == service.traces()
        with pytest.raises(WorkloadError):
            service.traces("Q3")
        # Recorded traces are oldest-first by execution sequence.
        seqs = [trace.seq for trace in service.traces("Q1")]
        assert seqs == sorted(seqs)

    def test_metrics_trace_block_and_clock_source(self, service):
        snapshot = service.metrics()
        trace = snapshot["templates"]["Q1"]["trace"]
        assert trace["enabled"] is True
        assert trace["occupancy"] <= trace["capacity"] + trace["error_capacity"]
        assert trace["recorded"] >= trace["occupancy"]
        assert set(trace["sampler"]) == {
            "forced",
            "head",
            "error_bias",
            "interval",
            "skipped",
        }
        assert snapshot["clock"] == {
            "source": "repro.resilience.clocks.system_clock"
        }

    def test_injected_clock_is_reported(self):
        from repro.resilience.faults import VirtualClock

        service = PlanCachingService.tpch(
            scale_factor=0.1,
            config=PPCConfig(drift_response=False),
            clock=VirtualClock(),
            seed=0,
        )
        service.register("Q1")
        assert service.metrics()["clock"] == {"source": "VirtualClock"}


class TestTelemetry:
    @pytest.fixture(scope="class")
    def rig(self):
        from repro.resilience import VirtualClock

        clock = VirtualClock()
        service = PlanCachingService.tpch(
            scale_factor=0.1,
            config=PPCConfig(confidence_threshold=0.8, drift_response=False),
            clock=clock,
            seed=0,
        )
        service.register("Q1")
        workload = RandomTrajectoryWorkload(2, spread=0.02, seed=5)
        for point in workload.generate(400):
            service.execute(service.instance_at("Q1", point))
            clock.advance(1.0)  # one simulated second per instance
        return service, clock

    def test_telemetry_sampled_on_the_virtual_clock(self, rig):
        service, __ = rig
        stats = service.metrics()["telemetry"]
        # 400 simulated seconds at a 5 s interval: ~80 snapshots.
        assert stats["samples"] >= 70
        assert stats["interval"] == 5.0
        assert stats["series"] > 0

    def test_quality_scorecard_shape(self, rig):
        service, __ = rig
        quality = service.quality()
        assert set(quality) == {"Q1"}
        card = quality["Q1"]
        assert card["executions"] >= 400
        assert 0.0 < card["synopsis"]["coverage"] <= 1.0
        assert 0.0 < card["synopsis"]["purity"] <= 1.0
        assert 0.0 <= card["rolling"]["accuracy"] <= 1.0
        assert card["rolling"]["regret"] >= 0.0
        assert "regret_attribution" in card
        json.dumps(card)  # JSON-ready

    def test_slo_block_and_prometheus_agree(self, rig):
        service, __ = rig
        snapshot = service.metrics()
        slo = snapshot["slo"]
        assert set(slo) == {"Q1"}
        assert {row["name"] for row in slo["Q1"]} == {
            "cache_hit_rate",
            "predict_latency_p95",
            "regret_budget",
        }
        text = service.prometheus()
        states = ("ok", "warning", "breach")
        for row in slo["Q1"]:
            assert row["state"] in states
            expected = states.index(row["state"])
            line = (
                f'ppc_slo_state{{slo="{row["name"]}",template="Q1"}} '
                f"{expected}"
            )
            assert line in text.splitlines()
        assert "# HELP ppc_slo_state" in text

    def test_health_report_is_json_ready_and_complete(self, rig):
        service, clock = rig
        report = service.health_report(tail=16)
        json.dumps(report)
        assert report["clock"]["source"] == "VirtualClock"
        assert report["clock"]["now"] == pytest.approx(clock.now())
        assert report["worst_state"] in ("ok", "warning", "breach")
        assert set(report["templates"]) == {"Q1"}
        assert set(report["slo"]) == {"Q1"}
        series = report["telemetry"]["series"]
        assert all(len(entry["points"]) <= 16 for entry in series)
        names = {entry["name"] for entry in series}
        assert "ppc_executions_total" in names

    def test_quality_gauges_refreshed_by_the_serving_path(self, rig):
        service, __ = rig
        # The periodic tick (every quality_every-th snapshot) has
        # published scorecard gauges without any explicit quality call.
        text = service.prometheus()
        assert 'ppc_quality_coverage{template="Q1"}' in text
        assert 'ppc_quality_rolling_accuracy{template="Q1"}' in text

    def test_disabled_telemetry_reports_empty_blocks(self):
        from repro.config import TelemetryConfig

        service = PlanCachingService.tpch(
            scale_factor=0.1,
            config=PPCConfig(
                drift_response=False,
                telemetry=TelemetryConfig(enabled=False),
            ),
            seed=0,
        )
        service.register("Q1")
        snapshot = service.metrics()
        assert snapshot["telemetry"] is None
        assert snapshot["slo"] is None
        report = service.health_report()
        assert report["telemetry"] is None
        assert report["slo"] == {}
        assert report["worst_state"] == "ok"
