"""Self-check for the whole-program rules: each RPR1xx rule fires on a
seeded multi-module violation and stays quiet on its clean twin.

Mirrors :mod:`repro.analysis.selftest` one level up: the violations
are deliberately *interprocedural* (a helper two or three calls deep,
sometimes behind a ``from ... import x as y`` re-export) so a
regression in call-graph construction, re-export chasing, or fixpoint
propagation fails the selftest — not just a regression in the rule's
final predicate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.effects.rules import analyze_sources


@dataclass(frozen=True)
class EffectSelfTestCase:
    """One rule's positive/negative multi-module project pair."""

    rule: str
    bad: "dict[str, str]"
    good: "dict[str, str]"
    bad_findings: int = 1
    #: Substrings the bad finding's witness chain must contain.
    witness_contains: "tuple[str, ...]" = ()


_EXCEPTIONS_MODULE = (
    "class ReproError(Exception):\n"
    "    pass\n"
    "class PredictionError(ReproError):\n"
    "    pass\n"
)

EFFECT_SELFTEST_CASES = (
    # RPR101: quality helper reaching random.random three calls deep,
    # the last hop through a re-exported alias.
    EffectSelfTestCase(
        rule="RPR101",
        bad={
            "repro.obs.quality": (
                "from repro.obs.qhelpers import spread\n"
                "def scorecard(values):\n"
                "    return spread(values)\n"
            ),
            "repro.obs.qhelpers": (
                "from repro.util.entropy import jitter as fuzz\n"
                "def spread(values):\n"
                "    return fuzz(values)\n"
            ),
            "repro.util.entropy": (
                "import random\n"
                "def jitter(values):\n"
                "    return [v + random.random() for v in values]\n"
            ),
        },
        good={
            "repro.obs.quality": (
                "from repro.obs.qhelpers import spread\n"
                "def scorecard(values):\n"
                "    return spread(values)\n"
            ),
            "repro.obs.qhelpers": (
                "def spread(values):\n"
                "    return max(values) - min(values)\n"
            ),
        },
        witness_contains=("scorecard", "spread", "jitter", "random.random"),
    ),
    # RPR102: TemplateSession.execute reaching time.time through a
    # module helper; the clean twin threads the injected alias.
    EffectSelfTestCase(
        rule="RPR102",
        bad={
            "repro.core.framework": (
                "from repro.core.timing import stamp\n"
                "class TemplateSession:\n"
                "    def execute(self, x):\n"
                "        return self._run(x)\n"
                "    def _run(self, x):\n"
                "        return stamp(x)\n"
            ),
            "repro.core.timing": (
                "import time\n"
                "def stamp(x):\n"
                "    return x, time.time()\n"
            ),
        },
        good={
            "repro.core.framework": (
                "from repro.resilience.clocks import system_clock\n"
                "class TemplateSession:\n"
                "    def __init__(self, clock=system_clock):\n"
                "        self._clock = clock\n"
                "    def execute(self, x):\n"
                "        return x, self._clock()\n"
            ),
            "repro.resilience.clocks": (
                "import time\n"
                "system_clock = time.monotonic\n"
            ),
        },
        witness_contains=("TemplateSession.execute", "_run", "stamp"),
    ),
    # RPR103: a public runtime method mutating the synopsis through a
    # private helper without bumping _mutations; the twin bumps.  The
    # init-only builder must stay exempt in both.
    EffectSelfTestCase(
        rule="RPR103",
        bad={
            "repro.core.lsh_predictor": (
                "class LshPredictor:\n"
                "    def __init__(self):\n"
                "        self._counts = {}\n"
                "        self._mutations = 0\n"
                "        self._seed()\n"
                "    def _seed(self):\n"
                "        self._counts[0] = 0.0\n"
                "    def insert(self, cell):\n"
                "        self._store(cell)\n"
                "    def _store(self, cell):\n"
                "        self._counts[cell] = 1.0\n"
            ),
        },
        good={
            "repro.core.lsh_predictor": (
                "class LshPredictor:\n"
                "    def __init__(self):\n"
                "        self._counts = {}\n"
                "        self._mutations = 0\n"
                "        self._seed()\n"
                "    def _seed(self):\n"
                "        self._counts[0] = 0.0\n"
                "    def insert(self, cell):\n"
                "        self._store(cell)\n"
                "        self._mutations += 1\n"
                "    def _store(self, cell):\n"
                "        self._counts[cell] = 1.0\n"
            ),
        },
        witness_contains=("insert", "_store"),
    ),
    # RPR105: a public predictor method bumping _mutations through a
    # helper without any _emit_event on the path; the twin journals
    # (via the same helper, proving closure propagation).  The
    # init-only pool replay stays exempt and unjournaled in both.
    EffectSelfTestCase(
        rule="RPR105",
        bad={
            "repro.core.lsh_predictor": (
                "class LshPredictor:\n"
                "    def __init__(self):\n"
                "        self._events = None\n"
                "        self._mutations = 0\n"
                "        self._insert_pool()\n"
                "    def _insert_pool(self):\n"
                "        self._mutations += 1\n"
                "    def _emit_event(self, kind, **fields):\n"
                "        if self._events is not None:\n"
                "            self._events(kind, **fields)\n"
                "    def insert(self, cell):\n"
                "        self._store(cell)\n"
                "    def _store(self, cell):\n"
                "        self._mutations += 1\n"
            ),
        },
        good={
            "repro.core.lsh_predictor": (
                "class LshPredictor:\n"
                "    def __init__(self):\n"
                "        self._events = None\n"
                "        self._mutations = 0\n"
                "        self._insert_pool()\n"
                "    def _insert_pool(self):\n"
                "        self._mutations += 1\n"
                "    def _emit_event(self, kind, **fields):\n"
                "        if self._events is not None:\n"
                "            self._events(kind, **fields)\n"
                "    def insert(self, cell):\n"
                "        self._store(cell)\n"
                "    def _store(self, cell):\n"
                "        self._mutations += 1\n"
                "        self._emit_event('point_inserted', plan=cell)\n"
            ),
        },
        witness_contains=("insert", "_store", "_emit_event"),
    ),
    # RPR104: a ValueError escaping a public core function through a
    # helper; the twin raises the project exception type (and a
    # wrapped variant proves catch masks subtract).
    EffectSelfTestCase(
        rule="RPR104",
        bad={
            "repro.exceptions": _EXCEPTIONS_MODULE,
            "repro.core.api": (
                "from repro.core.checks import _validate\n"
                "def predict(x):\n"
                "    _validate(x)\n"
                "    return x\n"
            ),
            "repro.core.checks": (
                "def _validate(x):\n"
                "    if x is None:\n"
                "        raise ValueError('x required')\n"
            ),
        },
        good={
            "repro.exceptions": _EXCEPTIONS_MODULE,
            "repro.core.api": (
                "from repro.core.checks import _validate\n"
                "from repro.exceptions import PredictionError\n"
                "def predict(x):\n"
                "    try:\n"
                "        _validate(x)\n"
                "    except ValueError as exc:\n"
                "        raise PredictionError(str(exc)) from exc\n"
                "    return x\n"
            ),
            "repro.core.checks": (
                "def _validate(x):\n"
                "    if x is None:\n"
                "        raise ValueError('x required')\n"
            ),
        },
        witness_contains=("predict", "_validate", "ValueError"),
    ),
)


def run_effects_selftest() -> "list[str]":
    """Exercise every case; returns failure descriptions (empty = OK)."""
    failures: "list[str]" = []
    for case in EFFECT_SELFTEST_CASES:
        findings, __ = analyze_sources(case.bad)
        bad = [f for f in findings if f.rule == case.rule]
        if len(bad) != case.bad_findings:
            failures.append(
                f"{case.rule}: bad project produced {len(bad)} "
                f"finding(s), expected {case.bad_findings}"
            )
        else:
            message = bad[0].message
            for needle in case.witness_contains:
                if needle not in message:
                    failures.append(
                        f"{case.rule}: witness missing {needle!r} in "
                        f"{message!r}"
                    )
        findings, __ = analyze_sources(case.good)
        good = [f for f in findings if f.rule == case.rule]
        if good:
            failures.append(
                f"{case.rule}: good project produced {len(good)} "
                f"unexpected finding(s): {good[0].message}"
            )
    return failures
