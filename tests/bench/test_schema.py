"""Schema-v2 envelope construction and validation."""

import json

import pytest

from repro.bench.schema import (
    SCHEMA_VERSION,
    env_fingerprint,
    load_envelope,
    make_envelope,
    metric,
    validate_envelope,
)
from repro.exceptions import BenchError


def _envelope(**overrides):
    envelope = make_envelope(
        "demo",
        metrics={"latency": metric(12.5, "us", "lower", tolerance_pct=50.0)},
        workload={"probes": 100, "seeds": {"session": 17}},
        gate={"passed": True},
    )
    envelope.update(overrides)
    return envelope


class TestEnvFingerprint:
    def test_has_all_keys_nonempty(self):
        env = env_fingerprint()
        for key in ("python", "numpy", "platform", "machine", "commit",
                    "version"):
            assert isinstance(env[key], str) and env[key], key


class TestMetric:
    def test_requires_a_tolerance(self):
        with pytest.raises(BenchError):
            metric(1.0, "us", "lower")

    def test_rejects_unknown_direction(self):
        with pytest.raises(BenchError):
            metric(1.0, "us", "sideways", tolerance_abs=1.0)

    def test_carries_both_tolerances(self):
        entry = metric(
            1.0, "us", "higher", tolerance_pct=10.0, tolerance_abs=0.5
        )
        assert entry["tolerance_pct"] == 10.0
        assert entry["tolerance_abs"] == 0.5
        assert entry["direction"] == "higher"


class TestValidateEnvelope:
    def test_good_envelope_passes(self):
        validate_envelope(_envelope())

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(BenchError, match="schema_version"):
            validate_envelope(_envelope(schema_version=1))

    def test_missing_metrics_rejected(self):
        with pytest.raises(BenchError, match="metrics"):
            validate_envelope(_envelope(metrics={}))

    def test_non_finite_value_rejected(self):
        bad = _envelope()
        bad["metrics"]["latency"]["value"] = float("inf")
        with pytest.raises(BenchError, match="finite"):
            validate_envelope(bad)

    def test_metric_without_tolerance_rejected(self):
        bad = _envelope()
        del bad["metrics"]["latency"]["tolerance_pct"]
        with pytest.raises(BenchError, match="tolerance"):
            validate_envelope(bad)

    def test_incomplete_env_rejected(self):
        bad = _envelope()
        bad["env"] = {"python": "3.11"}
        with pytest.raises(BenchError, match="env"):
            validate_envelope(bad)

    def test_all_problems_reported_at_once(self):
        bad = _envelope(schema_version=99, bench="", metrics={})
        with pytest.raises(BenchError, match="3 problem"):
            validate_envelope(bad)

    def test_non_dict_rejected(self):
        with pytest.raises(BenchError):
            validate_envelope([1, 2, 3])


class TestLoadEnvelope:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(_envelope(), sort_keys=True))
        assert load_envelope(path)["schema_version"] == SCHEMA_VERSION

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BenchError, match="cannot read"):
            load_envelope(tmp_path / "nope.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text("{not json")
        with pytest.raises(BenchError, match="not JSON"):
            load_envelope(path)
