"""Tracing must not perturb decisions: traced == untraced, bit for bit.

The sampler consumes no RNG and every traced code path computes the
same values as its untraced twin, so two sessions built from the same
seed must produce identical decision streams even when one records a
full trace for every execution and the other records none.
"""

import numpy as np
import pytest

from repro.config import PPCConfig, TraceConfig
from repro.core.framework import TemplateSession
from repro.workload import RandomTrajectoryWorkload


def _config(trace: TraceConfig) -> PPCConfig:
    return PPCConfig(
        confidence_threshold=0.7,
        mean_invocation_probability=0.05,
        drift_response=False,
        trace=trace,
    )


def _record_key(record):
    return (
        record.predicted,
        record.confidence,
        record.optimizer_invoked,
        record.invocation_reason,
        record.executed_plan,
        record.execution_cost,
        record.optimal_plan,
        record.degraded,
        record.fallback_source,
    )


class TestTraceParity:
    def test_full_tracing_matches_untraced_run(self, tiny_space):
        untraced = TemplateSession(
            tiny_space, _config(TraceConfig(enabled=False)), seed=11
        )
        traced = TemplateSession(
            tiny_space, _config(TraceConfig(interval=1, capacity=512)), seed=11
        )
        workload = RandomTrajectoryWorkload(2, spread=0.05, seed=4).generate(150)
        for x in workload:
            a = untraced.execute(x)
            b = traced.execute(x)
            assert _record_key(a) == _record_key(b)
        assert untraced.optimizer_invocations == traced.optimizer_invocations
        assert len(traced.tracer.traces()) > 0
        assert len(untraced.tracer.traces()) == 0

    def test_explain_matches_untraced_execute(self, tiny_space):
        """The satellite parity check: explain's outcome equals the
        ExecutionRecord an identical untraced session produces."""
        untraced = TemplateSession(
            tiny_space, _config(TraceConfig(enabled=False)), seed=3
        )
        explained = TemplateSession(
            tiny_space, _config(TraceConfig(enabled=False)), seed=3
        )
        workload = RandomTrajectoryWorkload(2, spread=0.05, seed=9).generate(80)
        for x in workload:
            record = untraced.execute(x)
            trace = explained.explain(x)
            twin = explained.records[-1]
            assert _record_key(record) == _record_key(twin)
            outcome = trace.outcome
            assert outcome["executed_plan"] == record.executed_plan
            assert outcome["fallback_source"] == record.fallback_source
            assert outcome["predicted"] == record.predicted
            assert outcome["invocation_reason"] == record.invocation_reason
            assert outcome["confidence"] == pytest.approx(record.confidence)

    def test_interleaved_explain_does_not_shift_the_stream(self, tiny_space):
        """explain mid-stream is an execution like any other — the
        decision sequence continues exactly as if execute had run."""
        plain = TemplateSession(
            tiny_space, _config(TraceConfig(enabled=False)), seed=5
        )
        mixed = TemplateSession(
            tiny_space, _config(TraceConfig(head=2)), seed=5
        )
        workload = RandomTrajectoryWorkload(2, spread=0.05, seed=2).generate(60)
        for i, x in enumerate(workload):
            a = plain.execute(x)
            if i % 7 == 3:
                mixed.explain(x)
                b = mixed.records[-1]
            else:
                b = mixed.execute(x)
            assert _record_key(a) == _record_key(b)

    def test_traced_run_consumes_identical_rng_stream(self, tiny_space):
        untraced = TemplateSession(
            tiny_space, _config(TraceConfig(enabled=False)), seed=21
        )
        traced = TemplateSession(
            tiny_space, _config(TraceConfig(interval=1)), seed=21
        )
        rng = np.random.default_rng(0)
        for x in rng.uniform(0, 1, (50, 2)):
            untraced.execute(x)
            traced.execute(x)
        # Both sessions drew the same number of invocation-probability
        # samples: the next draw from each internal RNG must agree.
        assert untraced.online._rng.random() == traced.online._rng.random()
