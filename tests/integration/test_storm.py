"""The storm test: everything at once.

A multi-template service under a memory budget executes an interleaved
Zipfian workload; midway, the popular template's plan space is
scrambled.  The system must: keep the budget, keep the healthy
templates precise, raise the drift alarm on the scrambled one, and keep
functioning after the drop.
"""

import numpy as np
import pytest

from repro.config import PPCConfig
from repro.core.framework import PPCFramework
from repro.workload import (
    ManipulatedPlanSpace,
    MixtureWorkload,
    RandomTrajectoryWorkload,
)
from repro.tpch import plan_space_for


@pytest.fixture(scope="module")
def storm_outcome():
    config = PPCConfig(
        confidence_threshold=0.8,
        drift_response=True,
        drift_threshold=0.6,
    )
    framework = PPCFramework(
        config, seed=0, memory_budget_bytes=20_000, governor_interval=40
    )
    oracles = {}
    for name in ("Q0", "Q1", "Q8"):
        base = plan_space_for(name)
        oracle = ManipulatedPlanSpace(base, seed=4)
        oracles[name] = oracle
        framework.register(oracle)

    mixture = MixtureWorkload(
        {"Q0": 2, "Q1": 2, "Q8": 3}, spread=0.02, zipf_exponent=0.5, seed=7
    )
    workload = mixture.generate(1800)
    for index, (name, point) in enumerate(workload):
        if index == 900:
            oracles["Q0"].activate()
        framework.execute(name, point)
    return framework


class TestStorm:
    def test_budget_respected(self, storm_outcome):
        assert storm_outcome.space_bytes <= 20_000

    def test_healthy_templates_stay_precise(self, storm_outcome):
        for name in ("Q1", "Q8"):
            metrics = storm_outcome.session(name).ground_truth_metrics()
            assert metrics.precision > 0.9, name

    def test_scrambled_template_raises_drift(self, storm_outcome):
        assert storm_outcome.session("Q0").drift_events >= 1

    def test_scrambled_template_stops_trusting_cache(self, storm_outcome):
        """After the manipulation, the framework answers almost nothing
        on the scrambled template instead of executing garbage."""
        records = storm_outcome.session("Q0").records
        half = len(records) // 2
        late_answer_rate = np.mean(
            [r.predicted is not None for r in records[-half // 2 :]]
        )
        assert late_answer_rate < 0.5

    def test_everything_kept_executing(self, storm_outcome):
        total = sum(
            len(storm_outcome.session(name).records)
            for name in ("Q0", "Q1", "Q8")
        )
        assert total == 1800

    def test_caching_still_paid_off_overall(self, storm_outcome):
        """Even with the storm, the healthy templates avoided a solid
        share of optimizer calls."""
        for name in ("Q1", "Q8"):
            session = storm_outcome.session(name)
            rate = session.optimizer_invocations / len(session.records)
            assert rate < 0.95, name
