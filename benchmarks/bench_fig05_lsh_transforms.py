"""Figure 5: randomized locality-preserving transformations.

Projects a labeled Q1 sample set through several random transforms and
reports, per transform, how well grid buckets align with plan labels
(bucket purity) — the property whose per-transform variation the median
aggregation smooths out.  Times one full transform application.
"""

import numpy as np

from _bench_utils import write_result
from repro.experiments.diagrams import transform_views
from repro.lsh.transforms import PlanSpaceTransform


def _bucket_purity(cell_ids: np.ndarray, plan_ids: np.ndarray) -> float:
    """Fraction of points whose bucket's majority plan matches theirs."""
    purity_hits = 0
    for cell in np.unique(cell_ids):
        members = plan_ids[cell_ids == cell]
        counts = np.bincount(members)
        purity_hits += counts.max()
    return purity_hits / plan_ids.size


def test_fig05_transform_geometry(benchmark):
    views = transform_views(
        template="Q1", transforms=5, samples=1000, resolution=8, seed=7
    )
    lines = [
        "Figure 5 — randomized transforms of Q1 samples (grid 8 per axis)",
        "",
        f"{'transform':>9s} {'occupied buckets':>17s} {'bucket purity':>14s}",
    ]
    purities = []
    for view in views:
        purity = _bucket_purity(view.cell_ids, view.plan_ids)
        purities.append(purity)
        lines.append(
            f"{view.transform_index:9d} "
            f"{len(np.unique(view.cell_ids)):17d} {purity:14.3f}"
        )
    lines.append("")
    lines.append(
        f"purity varies across transforms "
        f"(min {min(purities):.3f}, max {max(purities):.3f}); the median "
        "density estimate overrules the misaligned ones"
    )
    write_result("fig05_lsh_transforms", lines)

    assert all(p > 0.7 for p in purities)

    transform = PlanSpaceTransform(2, resolution=8, seed=0)
    points = np.random.default_rng(0).uniform(0, 1, (1000, 2))
    benchmark(transform.apply, points)
