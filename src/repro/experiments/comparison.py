"""Figure 3: quantitative comparison of candidate clustering methods.

K-means predict (c = 40), single-linkage predict, and density predict
(gamma in {0.5, 0.75, 0.95}) are each fitted on ``|X| = 1000`` sampled
plan-space points and asked to predict 1000 test points; the experiment
is repeated (20 times in the paper) and mean precision/recall per
radius ``d`` is reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering import (
    DensityPredictor,
    KMeansPredictor,
    SingleLinkagePredictor,
)
from repro.experiments.setup import evaluate_offline
from repro.rng import as_generator
from repro.tpch import plan_space_for
from repro.workload import sample_labeled_pool, sample_points

DEFAULT_RADII = (0.025, 0.05, 0.1, 0.15, 0.2)
DEFAULT_GAMMAS = (0.5, 0.75, 0.95)


@dataclass(frozen=True)
class ComparisonRow:
    """Mean precision/recall of one algorithm at one radius."""

    algorithm: str
    radius: float
    precision: float
    recall: float


def run_clustering_comparison(
    template: str = "Q1",
    radii: tuple[float, ...] = DEFAULT_RADII,
    gammas: tuple[float, ...] = DEFAULT_GAMMAS,
    repeats: int = 5,
    sample_size: int = 1000,
    test_size: int = 1000,
    clusters_per_plan: int = 40,
    seed: int = 7,
) -> list[ComparisonRow]:
    """Run the Section III comparison; returns one row per cell."""
    plan_space = plan_space_for(template)
    rng = as_generator(seed)

    accumulators: dict[tuple[str, float], list[tuple[float, float]]] = {}

    for __ in range(repeats):
        pool = sample_labeled_pool(plan_space, sample_size, seed=rng)
        test = sample_points(plan_space.dimensions, test_size, seed=rng)
        truth = plan_space.plan_at(test)

        for radius in radii:
            candidates = {
                f"k-means(c={clusters_per_plan})": KMeansPredictor(
                    pool, clusters_per_plan, radius, seed=rng
                ),
                "single-linkage": SingleLinkagePredictor(pool, radius),
            }
            for gamma in gammas:
                candidates[f"density(g={gamma})"] = DensityPredictor(
                    pool, radius, confidence_threshold=gamma
                )
            for name, predictor in candidates.items():
                metrics = evaluate_offline(predictor, test, truth)
                accumulators.setdefault((name, radius), []).append(
                    (metrics.precision, metrics.recall)
                )

    rows = []
    for (name, radius), values in sorted(accumulators.items()):
        precisions = np.array([v[0] for v in values])
        recalls = np.array([v[1] for v in values])
        rows.append(
            ComparisonRow(
                name, radius, float(precisions.mean()), float(recalls.mean())
            )
        )
    return rows
