"""DENSITY PREDICT (Section III-A, algorithm c).

Counts the sample points of each plan within radius ``d`` and returns
the majority plan iff the confidence sanity check passes — this is
precisely Algorithm 1 (BASELINE), so the class simply specializes
:class:`~repro.core.baseline.BaselinePredictor` under its Section III
name.  The qualitative comparison keeps it as a distinct entry point so
experiments read like the paper.
"""

from __future__ import annotations

from repro.core.baseline import BaselinePredictor
from repro.core.point import SamplePool


class DensityPredictor(BaselinePredictor):
    """Density-based plan prediction with the confidence threshold."""

    def __init__(
        self,
        pool: SamplePool,
        radius: float = 0.1,
        confidence_threshold: float = 0.75,
    ) -> None:
        super().__init__(
            pool,
            radius=radius,
            confidence_threshold=confidence_threshold,
        )
