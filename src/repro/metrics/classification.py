"""Precision and recall of plan-caching predictions (Definition 4).

Each prediction is either a plan identifier or NULL.  Precision is the
fraction of *NULL-free* predictions that were correct; recall is the
fraction of *all* predictions that were correct.  A predictor can
therefore trade recall for precision by declining to answer — the
central dial of the paper's algorithms.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class PredictionOutcome:
    """One prediction paired with the optimizer's true choice."""

    predicted: "int | None"
    actual: int

    @property
    def answered(self) -> bool:
        return self.predicted is not None

    @property
    def correct(self) -> bool:
        return self.predicted is not None and self.predicted == self.actual


@dataclass(frozen=True)
class PrecisionRecall:
    """Aggregated precision/recall over a series of predictions."""

    total: int
    answered: int
    correct: int

    @property
    def precision(self) -> float:
        """Correct / NULL-free predictions (1.0 when nothing answered,
        matching the convention that silence is never *wrong*)."""
        if self.answered == 0:
            return 1.0
        return self.correct / self.answered

    @property
    def recall(self) -> float:
        """Correct / all predictions (0.0 for an empty series)."""
        if self.total == 0:
            return 0.0
        return self.correct / self.total

    @property
    def answer_rate(self) -> float:
        """The beta(Q) factor of Section IV-E: NULL-free / total."""
        if self.total == 0:
            return 0.0
        return self.answered / self.total

    def __add__(self, other: "PrecisionRecall") -> "PrecisionRecall":
        return PrecisionRecall(
            self.total + other.total,
            self.answered + other.answered,
            self.correct + other.correct,
        )


def evaluate_predictions(
    predicted: Sequence["int | None"],
    actual: Sequence[int],
) -> PrecisionRecall:
    """Score a prediction series against the optimizer's true choices."""
    if len(predicted) != len(actual):
        raise ValueError("predicted and actual series must align")
    outcomes = [
        PredictionOutcome(p, int(a)) for p, a in zip(predicted, actual, strict=True)
    ]
    return summarize(outcomes)


def summarize(outcomes: Iterable[PredictionOutcome]) -> PrecisionRecall:
    """Aggregate a stream of outcomes into a :class:`PrecisionRecall`."""
    total = answered = correct = 0
    for outcome in outcomes:
        total += 1
        if outcome.answered:
            answered += 1
        if outcome.correct:
            correct += 1
    return PrecisionRecall(total, answered, correct)
