"""Cost-feedback misprediction detector."""

import pytest

from repro.core.feedback import CostFeedbackDetector
from repro.exceptions import ConfigurationError


class TestOneSided:
    def test_overrun_beyond_bound_flagged(self):
        detector = CostFeedbackDetector(epsilon=0.25)
        assert detector.is_erroneous(100.0, 130.0)

    def test_overrun_within_bound_accepted(self):
        detector = CostFeedbackDetector(epsilon=0.25)
        assert not detector.is_erroneous(100.0, 124.0)

    def test_cheap_execution_not_flagged(self):
        """One-sided default: cheaper than estimated is never an error."""
        detector = CostFeedbackDetector(epsilon=0.25)
        assert not detector.is_erroneous(100.0, 10.0)

    def test_boundary_is_strict(self):
        detector = CostFeedbackDetector(epsilon=0.25)
        assert not detector.is_erroneous(100.0, 125.0)
        assert detector.is_erroneous(100.0, 125.0001)


class TestTwoSided:
    def test_symmetric_bound(self):
        detector = CostFeedbackDetector(epsilon=0.25, one_sided=False)
        assert detector.is_erroneous(100.0, 130.0)
        assert detector.is_erroneous(100.0, 70.0)
        assert not detector.is_erroneous(100.0, 90.0)


class TestAbstention:
    def test_missing_estimate_abstains(self):
        detector = CostFeedbackDetector()
        assert not detector.is_erroneous(None, 100.0)

    def test_nonpositive_values_abstain(self):
        detector = CostFeedbackDetector()
        assert not detector.is_erroneous(0.0, 100.0)
        assert not detector.is_erroneous(100.0, 0.0)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            CostFeedbackDetector(epsilon=0.0)
