"""The Optimizer facade."""

import numpy as np
import pytest

from repro.optimizer import Optimizer


class TestOptimizerFacade:
    def test_optimize_returns_plan_and_cost(self, tiny_template, tiny_catalog):
        optimizer = Optimizer(tiny_template, tiny_catalog)
        plan, cost = optimizer.optimize(np.array([[0.4, 0.6]]))
        assert plan.fingerprint
        assert cost > 0

    def test_invocations_counted(self, tiny_template, tiny_catalog):
        optimizer = Optimizer(tiny_template, tiny_catalog)
        for __ in range(3):
            optimizer.optimize(np.array([[0.5, 0.5]]))
        assert optimizer.invocation_count == 3
        optimizer.reset_counters()
        assert optimizer.invocation_count == 0

    def test_matches_enumerator(self, tiny_template, tiny_catalog):
        from repro.optimizer.enumeration import DPEnumerator

        optimizer = Optimizer(tiny_template, tiny_catalog)
        enumerator = DPEnumerator(tiny_template, tiny_catalog)
        point = np.array([[0.3, 0.7]])
        plan_a, cost_a = optimizer.optimize(point)
        plan_b, cost_b = enumerator.optimize(point)
        assert plan_a.fingerprint == plan_b.fingerprint
        assert cost_a == pytest.approx(cost_b)


class TestExperimentSetupHelpers:
    def test_offline_truth_shapes(self, q1_space):
        from repro.experiments.setup import offline_truth

        test, truth = offline_truth(q1_space, test_count=100, seed=1)
        assert test.shape == (100, 2)
        assert truth.shape == (100,)
        assert (truth >= 0).all()

    def test_evaluate_offline_agrees_with_manual_scoring(
        self, q1_space, q1_pool, q1_test
    ):
        from repro.core.baseline import BaselinePredictor
        from repro.experiments.setup import evaluate_offline
        from repro.metrics import evaluate_predictions

        predictor = BaselinePredictor(q1_pool, 0.1, 0.7)
        test, truth = q1_test
        metrics = evaluate_offline(predictor, test, truth)
        manual_ids = [
            None if p is None else p.plan_id
            for p in predictor.predict_batch(test)
        ]
        manual = evaluate_predictions(manual_ids, truth)
        assert metrics.precision == manual.precision
        assert metrics.recall == manual.recall

    def test_standard_pool_sizes(self):
        from repro.experiments.setup import standard_pool

        space, pool = standard_pool("Q0", sample_size=64, seed=5)
        assert len(pool) == 64
        assert pool.dimensions == space.dimensions
