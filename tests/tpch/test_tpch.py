"""Modified TPC-H substrate: schema, statistics, templates."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.optimizer.parameters import ParameterMapping
from repro.tpch import (
    build_catalog,
    build_statistics,
    plan_space_for,
    query_template,
    query_templates,
)
from repro.tpch.schema import DATE_SPAN


class TestSchema:
    def test_row_counts_at_scale_factor_one(self):
        catalog = build_catalog()
        assert catalog.table("lineitem").row_count == 6_000_000
        assert catalog.table("orders").row_count == 1_500_000
        assert catalog.table("region").row_count == 5

    def test_scale_factor_scales_rows(self):
        catalog = build_catalog(scale_factor=0.1)
        assert catalog.table("lineitem").row_count == 600_000

    def test_every_table_has_a_date_column(self):
        catalog = build_catalog()
        for table in catalog.tables.values():
            gaussian = [
                c for c in table.columns.values()
                if c.distribution == "gaussian"
            ]
            assert gaussian, f"{table.name} lacks a date column"

    def test_primary_keys_clustered(self):
        catalog = build_catalog()
        assert catalog.index_on("lineitem", "l_orderkey").clustered
        assert catalog.index_on("customer", "c_custkey").unique

    def test_foreign_keys_indexed(self):
        catalog = build_catalog()
        assert catalog.index_on("lineitem", "l_partkey") is not None
        assert catalog.index_on("orders", "o_custkey") is not None

    def test_date_columns_indexed(self):
        catalog = build_catalog()
        for table in catalog.tables.values():
            for column in table.columns.values():
                if column.distribution == "gaussian":
                    assert catalog.index_on(table.name, column.name)


class TestStatistics:
    def test_gaussian_dates_centered(self):
        catalog = build_catalog(scale_factor=0.01)
        stats = build_statistics(catalog, seed=0, gaussian_samples=5000)
        sketch = stats.column("lineitem", "l_date")
        assert sketch.selectivity_leq(DATE_SPAN / 2) == pytest.approx(
            0.5, abs=0.03
        )

    def test_uniform_keys_linear(self):
        catalog = build_catalog(scale_factor=0.01)
        stats = build_statistics(catalog, seed=0, gaussian_samples=1000)
        sketch = stats.column("customer", "c_custkey")
        mid = (1 + catalog.table("customer").row_count) / 2
        assert sketch.selectivity_leq(mid) == pytest.approx(0.5, abs=0.01)

    def test_every_column_covered(self):
        catalog = build_catalog(scale_factor=0.01)
        stats = build_statistics(catalog, seed=0, gaussian_samples=1000)
        for table in catalog.tables.values():
            for column in table.columns.values():
                assert stats.column(table.name, column.name) is not None


class TestTemplates:
    def test_nine_templates(self):
        templates = query_templates()
        assert sorted(templates) == [f"Q{i}" for i in range(9)]

    def test_parameter_degrees_span_2_to_6(self):
        degrees = {
            name: template.parameter_degree
            for name, template in query_templates().items()
        }
        assert min(degrees.values()) == 2
        assert max(degrees.values()) == 6
        assert degrees["Q1"] == 2
        assert degrees["Q7"] == 6

    def test_q1_matches_paper_example(self):
        template = query_template("Q1")
        predicates = {str(p) for p in template.predicates}
        assert "supplier.s_date <= <v0>" in predicates
        assert "lineitem.l_partkey <= <v1>" in predicates

    def test_unknown_template_rejected(self):
        with pytest.raises(ConfigurationError):
            query_template("Q99")

    def test_templates_validate_against_catalog(self):
        catalog = build_catalog()
        for template in query_templates().values():
            # Every predicate column must exist, every mapping derivable.
            mapping = ParameterMapping.for_template(template, catalog)
            assert mapping.dimensions == template.parameter_degree


class TestPlanSpaceCache:
    def test_cache_returns_same_object(self):
        a = plan_space_for("Q0")
        b = plan_space_for("Q0")
        assert a is b

    def test_explicit_catalog_bypasses_cache(self):
        catalog = build_catalog(scale_factor=0.05)
        space = plan_space_for("Q0", catalog=catalog)
        assert space is not plan_space_for("Q0")

    def test_all_templates_have_multiple_plans(self):
        # Cheap check on the two cheapest templates plus session fixtures.
        for name in ("Q0", "Q2"):
            space = plan_space_for(name)
            assert space.plan_count >= 2
