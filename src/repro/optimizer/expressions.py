"""Query representation: column references, predicates and templates.

A :class:`QueryTemplate` captures everything the optimizer needs about
a parameterized SQL query: the tables it joins, the equi-join
predicates linking them, and the *parameterized range predicates* whose
selectivities form the query's plan space (Definition 2 of the paper).
The template's ``parameter_degree`` is the number of parameterized
predicates ``r``; a point ``x`` in ``[0, 1]^r`` assigns a selectivity to
each one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ColumnRef:
    """A reference to ``table.column``."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class ParamPredicate:
    """A parameterized range predicate, e.g. ``l_date <= <v1>``.

    ``param_index`` is the predicate's position in the template's
    normalized parameter vector.  The *actual* selectivity at plan-space
    point ``x`` is obtained through the template's
    :class:`~repro.optimizer.parameters.ParameterMapping`: coordinate
    ``x[param_index]`` sweeps ``sel_range`` on the given ``scale``
    (``sel_range=None`` derives a default range from the table's
    cardinality).
    """

    column: ColumnRef
    param_index: int
    op: str = "<="
    sel_range: "tuple[float, float] | None" = None
    scale: str = "log"

    def __post_init__(self) -> None:
        if self.op not in ("<=", ">="):
            raise ConfigurationError(f"unsupported predicate op {self.op!r}")
        if self.param_index < 0:
            raise ConfigurationError("param_index must be non-negative")
        if self.scale not in ("log", "linear"):
            raise ConfigurationError(f"unknown selectivity scale {self.scale!r}")

    def __str__(self) -> str:
        return f"{self.column} {self.op} <v{self.param_index}>"


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left = right``."""

    left: ColumnRef
    right: ColumnRef

    def tables(self) -> frozenset[str]:
        return frozenset((self.left.table, self.right.table))

    def column_for(self, table: str) -> ColumnRef:
        if self.left.table == table:
            return self.left
        if self.right.table == table:
            return self.right
        raise ConfigurationError(
            f"join predicate {self} does not involve table {table!r}"
        )

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass
class QueryTemplate:
    """A SQL query template with explicit parameters (Section II-A).

    ``order_by`` requests sorted output: the optimizer keeps plans with
    *interesting orders* alive through the dynamic program and either
    exploits a naturally sorted plan (index scan / merge join) or adds
    a final sort enforcer, whichever is cheaper.
    """

    name: str
    tables: tuple[str, ...]
    joins: tuple[JoinPredicate, ...] = ()
    predicates: tuple[ParamPredicate, ...] = ()
    order_by: "ColumnRef | None" = None
    description: str = ""
    _predicates_by_table: dict[str, list[ParamPredicate]] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.tables:
            raise ConfigurationError("template must reference a table")
        if len(set(self.tables)) != len(self.tables):
            raise ConfigurationError("template references a table twice")
        table_set = set(self.tables)
        if self.order_by is not None and self.order_by.table not in table_set:
            raise ConfigurationError(
                f"order-by column {self.order_by} references a table "
                f"outside {self.tables}"
            )
        for join in self.joins:
            if not join.tables() <= table_set:
                raise ConfigurationError(
                    f"join {join} references a table outside {self.tables}"
                )
        indexes = sorted(p.param_index for p in self.predicates)
        if indexes != list(range(len(self.predicates))):
            raise ConfigurationError(
                "predicate param indexes must be 0..r-1 without gaps"
            )
        for predicate in self.predicates:
            if predicate.column.table not in table_set:
                raise ConfigurationError(
                    f"predicate {predicate} references a table "
                    f"outside {self.tables}"
                )
            self._predicates_by_table.setdefault(
                predicate.column.table, []
            ).append(predicate)

    @property
    def parameter_degree(self) -> int:
        """The number ``r`` of parameterized predicates."""
        return len(self.predicates)

    def predicates_on(self, table: str) -> list[ParamPredicate]:
        """Parameterized predicates local to one table."""
        return list(self._predicates_by_table.get(table, ()))

    def joins_between(
        self, left_tables: frozenset[str], right_table: str
    ) -> list[JoinPredicate]:
        """Join predicates connecting a set of tables to one new table."""
        connecting = []
        for join in self.joins:
            involved = join.tables()
            if right_table in involved and (involved - {right_table}) <= left_tables:
                connecting.append(join)
        return connecting

    def joins_connecting(
        self,
        left_tables: frozenset[str],
        right_tables: frozenset[str],
    ) -> list[JoinPredicate]:
        """Join predicates with one side in each table set (bushy joins)."""
        connecting = []
        for join in self.joins:
            sides = list(join.tables())
            if len(sides) != 2:
                continue
            a, b = sides
            if (a in left_tables and b in right_tables) or (
                b in left_tables and a in right_tables
            ):
                connecting.append(join)
        return connecting

    def sql(self) -> str:
        """A SQL rendering of the template (documentation aid)."""
        clauses = [str(j) for j in self.joins] + [str(p) for p in self.predicates]
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        order = f" ORDER BY {self.order_by}" if self.order_by else ""
        return f"SELECT * FROM {', '.join(self.tables)}{where}{order}"
