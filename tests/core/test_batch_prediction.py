"""Vectorized prediction paths match their scalar counterparts."""

import numpy as np
import pytest

from repro.core.confidence import ConfidenceModel
from repro.core.histogram_predictor import HistogramPredictor
from repro.core.point import SamplePool
from repro.exceptions import ConfigurationError
from repro.workload import sample_points


def _pool():
    pool = SamplePool(2)
    rng = np.random.default_rng(0)
    for x in rng.uniform(0.0, 0.45, size=(120, 2)):
        pool.add(x, 0, cost=5.0)
    for x in rng.uniform(0.55, 1.0, size=(120, 2)):
        pool.add(x, 1, cost=9.0)
    return pool


class TestDecideBatch:
    def test_matches_scalar(self):
        model = ConfidenceModel()
        rng = np.random.default_rng(1)
        counts = rng.integers(0, 20, size=(100, 4)).astype(float)
        winners, confidences = model.decide_batch(counts, 0.7)
        for i in range(100):
            plan, confidence = model.decide(counts[i], 0.7)
            expected = -1 if plan is None else plan
            assert winners[i] == expected
            assert confidences[i] == pytest.approx(confidence, abs=1e-9)

    def test_all_zero_rows_are_null(self):
        model = ConfidenceModel()
        winners, confidences = model.decide_batch(np.zeros((3, 4)), 0.0)
        assert (winners == -1).all()
        assert (confidences == 0.0).all()

    def test_rejects_non_matrix(self):
        with pytest.raises(ConfigurationError):
            ConfidenceModel().decide_batch(np.zeros(4), 0.5)


class TestHistogramPredictBatch:
    @pytest.mark.parametrize("kind", ["maxdiff", "incremental"])
    def test_matches_scalar(self, kind):
        predictor = HistogramPredictor(
            _pool(),
            transforms=5,
            radius=0.1,
            confidence_threshold=0.7,
            noise_fraction=0.002,
            histogram_kind=kind,
            seed=1,
        )
        test = sample_points(2, 200, seed=3)
        scalar = [predictor.predict(test[i]) for i in range(200)]
        batch = predictor.predict_batch(test)
        for s, b in zip(scalar, batch, strict=True):
            assert (s is None) == (b is None)
            if s is not None:
                assert s.plan_id == b.plan_id
                assert s.confidence == pytest.approx(b.confidence, abs=1e-9)
                if s.estimated_cost is None:
                    assert b.estimated_cost is None
                else:
                    assert s.estimated_cost == pytest.approx(b.estimated_cost)

    def test_single_point_input(self):
        predictor = HistogramPredictor(
            _pool(), radius=0.1, confidence_threshold=0.5, seed=1
        )
        batch = predictor.predict_batch(np.array([0.2, 0.2]))
        assert len(batch) == 1
        assert batch[0].plan_id == 0

    def test_batch_faster_than_scalar(self):
        import time

        predictor = HistogramPredictor(
            _pool(), transforms=5, radius=0.1, seed=1
        )
        test = sample_points(2, 300, seed=4)
        start = time.perf_counter()
        for i in range(300):
            predictor.predict(test[i])
        scalar_time = time.perf_counter() - start
        start = time.perf_counter()
        predictor.predict_batch(test)
        batch_time = time.perf_counter() - start
        assert batch_time < scalar_time


def _assert_parity(predictor, points):
    """predict_batch must agree with per-point predict exactly."""
    scalar = [predictor.predict(points[i]) for i in range(points.shape[0])]
    batch = predictor.predict_batch(points)
    assert len(batch) == len(scalar)
    for s, b in zip(scalar, batch, strict=True):
        assert (s is None) == (b is None)
        if s is None:
            continue
        assert s.plan_id == b.plan_id
        assert s.confidence == pytest.approx(b.confidence, abs=1e-9)
        if s.estimated_cost is None:
            assert b.estimated_cost is None
        else:
            assert s.estimated_cost == pytest.approx(b.estimated_cost)
    return scalar, batch


class TestScalarBatchParity:
    """predict vs predict_batch on unstructured random pools."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("kind", ["maxdiff", "incremental"])
    def test_random_pools(self, seed, kind):
        rng = np.random.default_rng(seed)
        pool = SamplePool(2)
        coords = rng.uniform(size=(150, 2))
        plan_ids = rng.integers(0, 3, size=150)
        costs = rng.uniform(1.0, 10.0, size=150)
        for x, plan, cost in zip(coords, plan_ids, costs, strict=True):
            pool.add(x, int(plan), cost=float(cost))
        predictor = HistogramPredictor(
            pool,
            transforms=3,
            radius=0.08,
            confidence_threshold=0.4,
            noise_fraction=0.01,
            histogram_kind=kind,
            seed=seed + 10,
        )
        test = sample_points(2, 120, seed=seed + 20)
        _assert_parity(predictor, test)

    def test_noise_elimination_parity_includes_nulls(self):
        predictor = HistogramPredictor(
            _pool(),
            transforms=5,
            radius=0.1,
            confidence_threshold=0.0,
            noise_fraction=0.05,
            seed=1,
        )
        test = sample_points(2, 200, seed=5)
        __, batch = _assert_parity(predictor, test)
        # The parity check must actually exercise both branches.
        assert any(b is None for b in batch)
        assert any(b is not None for b in batch)

    def test_unsupported_winner_yields_cost_none_in_both(self):
        class ForcedWinner(ConfidenceModel):
            """Forces a plan no training point supports."""

            def decide(self, counts, threshold):
                return 2, 1.0

            def decide_batch(self, counts, threshold):
                m = counts.shape[0]
                return np.full(m, 2, dtype=int), np.ones(m)

        predictor = HistogramPredictor(
            _pool(),
            plan_count=3,
            transforms=5,
            radius=0.1,
            confidence_threshold=0.0,
            noise_fraction=None,
            seed=1,
            confidence_model=ForcedWinner(),
        )
        test = sample_points(2, 50, seed=9)
        __, batch = _assert_parity(predictor, test)
        # Plan 2 has zero support everywhere: a prediction is still
        # produced, but with no cost estimate — in both code paths.
        assert all(b is not None for b in batch)
        assert all(b.estimated_cost is None for b in batch)


class TestBaselinePredictBatch:
    def test_matches_scalar(self):
        from repro.core.baseline import BaselinePredictor

        predictor = BaselinePredictor(
            _pool(), radius=0.15, confidence_threshold=0.7
        )
        test = sample_points(2, 300, seed=6)
        scalar = [
            BaselinePredictor.predict(predictor, test[i]) for i in range(300)
        ]
        batch = predictor.predict_batch(test, chunk_size=64)
        for s, b in zip(scalar, batch, strict=True):
            assert (s is None) == (b is None)
            if s is not None:
                assert s.plan_id == b.plan_id
                assert s.confidence == pytest.approx(b.confidence, abs=1e-9)
                if s.estimated_cost is None:
                    assert b.estimated_cost is None
                else:
                    assert s.estimated_cost == pytest.approx(b.estimated_cost)

    def test_chunking_irrelevant_to_results(self):
        from repro.core.baseline import BaselinePredictor

        predictor = BaselinePredictor(_pool(), radius=0.15)
        test = sample_points(2, 100, seed=7)
        small = predictor.predict_batch(test, chunk_size=7)
        large = predictor.predict_batch(test, chunk_size=1000)
        for a, b in zip(small, large, strict=True):
            assert (a is None) == (b is None)
            if a is not None:
                assert a.plan_id == b.plan_id
