"""Fixed-resolution grid over a rectangular region.

The NAIVE predictor partitions the raw plan space with a single grid;
APPROXIMATE-LSH partitions each randomly transformed space with one.
A grid maps points to integer cell coordinates and flat cell ids, and
exposes the geometric quantities (cell width, cell volume) needed to
convert per-cell point counts into densities.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

import numpy as np

from repro.exceptions import ConfigurationError


class Grid:
    """Uniform grid with ``resolution`` cells along each of ``dims`` axes."""

    def __init__(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        resolution: int,
    ) -> None:
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)
        if self.lo.shape != self.hi.shape or self.lo.ndim != 1:
            raise ConfigurationError("grid bounds must be 1-D and aligned")
        if (self.hi <= self.lo).any():
            raise ConfigurationError("grid upper bound must exceed lower bound")
        if resolution < 1:
            raise ConfigurationError("grid resolution must be >= 1")
        self.dims = self.lo.shape[0]
        self.resolution = resolution
        self.cell_widths = (self.hi - self.lo) / resolution

    @property
    def total_cells(self) -> int:
        return self.resolution**self.dims

    @property
    def cell_volume(self) -> float:
        return float(np.prod(self.cell_widths))

    def cell_coords(self, points: np.ndarray) -> np.ndarray:
        """Integer cell coordinates ``(n, dims)`` of each point (clipped)."""
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        relative = (points - self.lo) / self.cell_widths
        return np.clip(relative.astype(np.int64), 0, self.resolution - 1)

    def cell_ids(self, points: np.ndarray) -> np.ndarray:
        """Flattened (row-major) cell ids ``(n,)`` of each point."""
        coords = self.cell_coords(points)
        ids = np.zeros(coords.shape[0], dtype=np.int64)
        for axis in range(self.dims):
            ids = ids * self.resolution + coords[:, axis]
        return ids

    def unit_coords(self, points: np.ndarray) -> np.ndarray:
        """Rescale points into the unit cube (for z-order linearization)."""
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        unit = (points - self.lo) / (self.hi - self.lo)
        return np.clip(unit, 0.0, np.nextafter(1.0, 0.0))

    def neighbor_ids(self, point: np.ndarray, radius: float) -> Iterator[int]:
        """Flat ids of all cells intersecting the ball around ``point``.

        Used by the NAIVE predictor when a query ball spills beyond the
        containing bucket.  Iterates the (small) hyper-rectangle of
        cells covering the ball's bounding box.
        """
        point = np.asarray(point, dtype=float)
        lo_coords = self.cell_coords(point - radius)[0]
        hi_coords = self.cell_coords(point + radius)[0]
        ranges = [
            range(int(lo_coords[axis]), int(hi_coords[axis]) + 1)
            for axis in range(self.dims)
        ]
        for coords in itertools.product(*ranges):
            flat = 0
            for axis in range(self.dims):
                flat = flat * self.resolution + coords[axis]
            yield flat
