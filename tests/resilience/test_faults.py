"""FaultInjector: deterministic, seedable, component-independent."""

import numpy as np
import pytest

from repro.exceptions import ResilienceError
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    InjectedTimeout,
    VirtualClock,
    bit_flip,
    torn_copy,
)


def _outcomes(injector, component, calls):
    wrapped = injector.wrap(component, lambda: "ok")
    outcomes = []
    for __ in range(calls):
        try:
            outcomes.append(wrapped())
        except InjectedTimeout:
            outcomes.append("timeout")
        except InjectedFault:
            outcomes.append("fault")
    return outcomes


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        a = FaultInjector(
            {"optimizer": FaultSpec(failure_probability=0.3)}, seed=7
        )
        b = FaultInjector(
            {"optimizer": FaultSpec(failure_probability=0.3)}, seed=7
        )
        assert _outcomes(a, "optimizer", 200) == _outcomes(
            b, "optimizer", 200
        )

    def test_different_seeds_differ(self):
        a = FaultInjector(
            {"optimizer": FaultSpec(failure_probability=0.3)}, seed=7
        )
        b = FaultInjector(
            {"optimizer": FaultSpec(failure_probability=0.3)}, seed=8
        )
        assert _outcomes(a, "optimizer", 200) != _outcomes(
            b, "optimizer", 200
        )

    def test_components_draw_independent_streams(self):
        """Using one component must not perturb another's sequence."""
        spec = {
            "optimizer": FaultSpec(failure_probability=0.3),
            "predictor": FaultSpec(failure_probability=0.3),
        }
        alone = FaultInjector(spec, seed=3)
        optimizer_alone = _outcomes(alone, "optimizer", 100)
        mixed = FaultInjector(spec, seed=3)
        _outcomes(mixed, "predictor", 57)  # interleave the other stream
        assert _outcomes(mixed, "optimizer", 100) == optimizer_alone


class TestDistribution:
    def test_failure_rate_close_to_configured(self):
        injector = FaultInjector(
            {"x": FaultSpec(failure_probability=0.2)}, seed=0
        )
        outcomes = _outcomes(injector, "x", 5000)
        rate = outcomes.count("fault") / len(outcomes)
        assert 0.17 < rate < 0.23
        assert injector.counts[("x", "exception")] == outcomes.count("fault")

    def test_timeouts_distinct_from_failures(self):
        injector = FaultInjector(
            {
                "x": FaultSpec(
                    failure_probability=0.2, timeout_probability=0.2
                )
            },
            seed=1,
        )
        outcomes = _outcomes(injector, "x", 2000)
        assert outcomes.count("timeout") > 0
        assert outcomes.count("fault") > 0
        assert injector.counts[("x", "timeout")] == outcomes.count("timeout")

    def test_slow_calls_pay_latency_through_injected_sleep(self):
        clock = VirtualClock()
        injector = FaultInjector(
            {"x": FaultSpec(slow_probability=1.0, latency=0.25)},
            seed=0,
            sleep=clock.sleep,
        )
        wrapped = injector.wrap("x", lambda: "ok")
        assert wrapped() == "ok"
        assert clock.now() == pytest.approx(0.25)
        assert injector.counts[("x", "slow")] == 1

    def test_unlisted_component_passes_through_unwrapped(self):
        injector = FaultInjector(
            {"x": FaultSpec(failure_probability=1.0)}, seed=0
        )
        fn = lambda: "ok"  # noqa: E731
        assert injector.wrap("other", fn) is fn

    def test_inert_spec_passes_through_unwrapped(self):
        injector = FaultInjector({"x": FaultSpec()}, seed=0)
        fn = lambda: "ok"  # noqa: E731
        assert injector.wrap("x", fn) is fn


class TestSpecValidation:
    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ResilienceError):
            FaultSpec(failure_probability=1.5)

    def test_probabilities_summing_over_one_rejected(self):
        with pytest.raises(ResilienceError):
            FaultSpec(
                failure_probability=0.6,
                timeout_probability=0.3,
                slow_probability=0.2,
            )

    def test_negative_latency_rejected(self):
        with pytest.raises(ResilienceError):
            FaultSpec(latency=-1.0)


class TestVirtualClock:
    def test_sleep_advances_now(self):
        clock = VirtualClock(start=10.0)
        clock.sleep(2.5)
        assert clock.now() == pytest.approx(12.5)
        assert clock() == clock.now()

    def test_clock_refuses_to_rewind(self):
        clock = VirtualClock()
        with pytest.raises(ResilienceError):
            clock.advance(-1.0)


class TestCorruptionHelpers:
    def test_torn_copy_truncates(self):
        assert torn_copy("abcdefgh", 0.5) == "abcd"
        assert torn_copy("abcdefgh", 0.0) == "a"

    def test_bit_flip_changes_exactly_one_byte(self):
        original = '{"key": "value"}'
        flipped = bit_flip(original, 3)
        assert len(flipped) == len(original)
        assert flipped != original
        diffs = sum(a != b for a, b in zip(original, flipped, strict=True))
        assert diffs == 1


class TestTornWrites:
    def test_torn_write_leaves_truncated_file_and_raises(self, tmp_path):
        from repro.core.persistence import dumps_predictor
        from tests.resilience.helpers import small_predictor

        predictor = small_predictor()
        injector = FaultInjector(
            {"persistence": FaultSpec(torn_write_probability=1.0)}, seed=0
        )
        path = tmp_path / "state.json"
        with pytest.raises(InjectedFault):
            injector.save_predictor(predictor, path)
        assert path.exists()
        complete = dumps_predictor(predictor)
        torn = path.read_text()
        assert len(torn) < len(complete)
        assert complete.startswith(torn)
        assert injector.counts[("persistence", "torn_write")] == 1

    def test_zero_probability_writes_atomically(self, tmp_path):
        from repro.core.persistence import load_predictor
        from tests.resilience.helpers import small_predictor

        predictor = small_predictor()
        injector = FaultInjector(
            {"persistence": FaultSpec(torn_write_probability=0.0)}, seed=0
        )
        path = injector.save_predictor(predictor, tmp_path / "state.json")
        assert (
            load_predictor(path).total_points == predictor.total_points
        )


class TestStormPreset:
    def test_storm_covers_all_components(self):
        injector = FaultInjector.storm(seed=0)
        assert set(injector.specs) == {
            "optimizer",
            "predictor",
            "predictor_insert",
            "persistence",
        }

    def test_reporting_shapes(self):
        injector = FaultInjector(
            {"x": FaultSpec(failure_probability=1.0)}, seed=0
        )
        wrapped = injector.wrap("x", lambda: None)
        for __ in range(3):
            with pytest.raises(InjectedFault):
                wrapped()
        assert injector.total_injected == 3
        assert injector.summary() == {"x": {"exception": 3}}


def test_rng_streams_match_numpy_spawn_convention():
    """The per-component stream is a plain Generator over a spawn-keyed
    SeedSequence — stable across sessions and platforms."""
    injector = FaultInjector(
        {"x": FaultSpec(failure_probability=0.5)}, seed=123
    )
    stream = injector._stream("x")
    assert isinstance(stream, np.random.Generator)
    assert injector._stream("x") is stream
