"""Guarded decision flow: degradation, fallback chain, acceptance storm."""

import numpy as np
import pytest

from repro.config import PPCConfig, ResilienceConfig
from repro.core.framework import TemplateSession
from repro.core.persistence import load_predictor
from repro.exceptions import PredictionError, ResilienceError
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    VirtualClock,
)
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN
from repro.service import PlanCachingService
from tests.resilience.helpers import cold_predictor


def fast_config(_ppc=None, **resilience_kwargs) -> PPCConfig:
    resilience_kwargs.setdefault("retry_attempts", 2)
    resilience_kwargs.setdefault("retry_base_delay", 0.001)
    resilience_kwargs.setdefault("retry_max_delay", 0.01)
    return PPCConfig(
        resilience=ResilienceConfig(**resilience_kwargs), **(_ppc or {})
    )


def make_session(plan_space, injector=None, clock=None, config=None):
    clock = clock or VirtualClock()
    return (
        TemplateSession(
            plan_space,
            config or fast_config(),
            seed=0,
            fault_injector=injector,
            clock=clock,
            sleep=clock.sleep,
        ),
        clock,
    )


def degraded_count(session, component: str) -> int:
    return int(
        session.metrics.counter_value(
            "ppc_degraded_total",
            template=session.plan_space.template.name,
            component=component,
        )
    )


class TestPredictorDegradation:
    def test_broken_predictor_degrades_to_optimizer(self, tiny_space):
        injector = FaultInjector(
            {"predictor": FaultSpec(failure_probability=1.0)}, seed=0
        )
        session, __ = make_session(tiny_space, injector)
        rng = np.random.default_rng(0)
        for x in rng.uniform(0.0, 1.0, size=(20, tiny_space.dimensions)):
            record = session.execute(x)
            assert record.predicted is None
            assert record.degraded
            assert record.optimizer_invoked
            assert record.invocation_reason == "null_prediction"
        assert degraded_count(session, "predictor") == 20
        assert injector.counts[("predictor", "exception")] == 20

    def test_broken_insert_never_blocks_execution(self, tiny_space):
        injector = FaultInjector(
            {"predictor_insert": FaultSpec(failure_probability=1.0)},
            seed=0,
        )
        session, __ = make_session(tiny_space, injector)
        rng = np.random.default_rng(1)
        for x in rng.uniform(0.0, 1.0, size=(10, tiny_space.dimensions)):
            record = session.execute(x)
            assert record.executed_plan >= 0
        # Every optimizer result failed to insert, so the predictor
        # stays cold — but each instance still executed.
        assert session.online.sample_count == 0
        assert degraded_count(session, "predictor_insert") == 10


class TestValidation:
    @pytest.fixture()
    def session(self, tiny_space):
        return make_session(tiny_space)[0]

    def rejected(self, session, reason):
        return int(
            session.metrics.counter_value(
                "ppc_rejected_instances_total",
                template=session.plan_space.template.name,
                reason=reason,
            )
        )

    def test_nan_rejected(self, session):
        with pytest.raises(PredictionError):
            session.execute(np.array([np.nan, 0.5]))
        assert self.rejected(session, "non_finite") == 1

    def test_infinity_rejected(self, session):
        with pytest.raises(PredictionError):
            session.execute(np.array([0.5, np.inf]))
        assert self.rejected(session, "non_finite") == 1

    def test_out_of_domain_rejected(self, session):
        with pytest.raises(PredictionError):
            session.execute(np.array([1.5, 0.5]))
        with pytest.raises(PredictionError):
            session.execute(np.array([-0.1, 0.5]))
        assert self.rejected(session, "out_of_domain") == 2

    def test_bad_shape_rejected(self, session):
        with pytest.raises(PredictionError):
            session.execute(np.array([0.1, 0.2, 0.3]))
        assert self.rejected(session, "bad_shape") == 1

    def test_rejected_instance_leaves_no_record(self, session):
        with pytest.raises(PredictionError):
            session.execute(np.array([np.nan, 0.5]))
        assert session.records == []

    def test_validation_can_be_disabled(self, tiny_space):
        config = fast_config(validate_points=False)
        session, __ = make_session(tiny_space, config=config)
        record = session.execute(np.array([0.5, 0.5]))
        assert record.executed_plan >= 0
        assert self.rejected(session, "non_finite") == 0


class TestBreakerFallback:
    def warm_cache(self, session, plan_space):
        x = np.full(plan_space.dimensions, 0.5)
        ids, __ = plan_space.label(x[None, :])
        plan_id = int(ids[0])
        session.cache.put(plan_id, plan_space.plan(plan_id))
        session._last_plan_id = plan_id
        return plan_id

    def test_persistent_failure_opens_breaker_and_serves_cache(
        self, tiny_space
    ):
        injector = FaultInjector(
            {"optimizer": FaultSpec(failure_probability=1.0)}, seed=0
        )
        config = fast_config(
            breaker_failure_threshold=3, breaker_recovery_time=60.0
        )
        session, clock = make_session(tiny_space, injector, config=config)
        warm_plan = self.warm_cache(session, tiny_space)

        rng = np.random.default_rng(2)
        records = [
            session.execute(x)
            for x in rng.uniform(0.0, 1.0, size=(10, tiny_space.dimensions))
        ]
        assert session.breaker.state == OPEN
        assert session.breaker.transitions == {OPEN: 1}
        for record in records:
            assert record.degraded
            assert record.fallback_source == "last_plan"
            assert record.executed_plan == warm_plan
            assert not record.optimizer_invoked
            assert record.suboptimality >= 1.0
        # First three instances exhausted their retries (one retry
        # each with attempts=2); once open, calls are rejected without
        # touching the optimizer at all.
        assert injector.counts[("optimizer", "exception")] == 6
        assert degraded_count(session, "optimizer") == 10
        histogram = session.metrics.histogram_summary(
            "ppc_fallback_suboptimality",
            template=tiny_space.template.name,
        )
        assert histogram["count"] == 10

    def test_breaker_recovers_when_optimizer_heals(self, tiny_space):
        injector = FaultInjector(
            {"optimizer": FaultSpec(failure_probability=1.0)}, seed=0
        )
        config = fast_config(
            breaker_failure_threshold=2, breaker_recovery_time=30.0
        )
        session, clock = make_session(tiny_space, injector, config=config)
        self.warm_cache(session, tiny_space)
        rng = np.random.default_rng(3)
        points = rng.uniform(0.0, 1.0, size=(4, tiny_space.dimensions))
        for x in points[:2]:
            session.execute(x)
        assert session.breaker.state == OPEN

        # Still failing at the half-open probe: the breaker re-opens.
        clock.advance(31.0)
        assert session.breaker.state == HALF_OPEN
        record = session.execute(points[2])
        assert session.breaker.state == OPEN
        assert record.fallback_source == "last_plan"

        # The optimizer heals (drop the fault wrapper); the next probe
        # succeeds and the breaker closes.
        session._label = tiny_space.label
        clock.advance(31.0)
        record = session.execute(points[3])
        assert record.optimizer_invoked
        assert not record.degraded
        assert session.breaker.state == CLOSED
        assert session.breaker.transitions[CLOSED] == 1

    def test_empty_cache_with_optimizer_down_is_an_error(self, tiny_space):
        injector = FaultInjector(
            {"optimizer": FaultSpec(failure_probability=1.0)}, seed=0
        )
        session, __ = make_session(tiny_space, injector)
        with pytest.raises(ResilienceError, match="cache is empty"):
            session.execute(np.full(tiny_space.dimensions, 0.5))


class TestNegativeFeedbackDegraded:
    def test_unverifiable_suspicion_keeps_the_executed_plan(
        self, tiny_space
    ):
        config = fast_config(_ppc={"mean_invocation_probability": 0.0})
        session, __ = make_session(tiny_space, config=config)
        rng = np.random.default_rng(4)
        # Warm up until the predictor answers from the synopses.
        prediction = None
        probe = None
        for x in rng.uniform(0.0, 1.0, size=(400, tiny_space.dimensions)):
            session.execute(x)
            candidate = session.online.predict(x)
            if candidate is not None and candidate.plan_id in session.cache:
                prediction, probe = candidate, x
        assert prediction is not None, "predictor never warmed up"

        # Force a suspected misprediction while the optimizer is down.
        session.online.suspect_error = lambda *a, **k: True

        def broken(points):
            raise RuntimeError("optimizer offline")

        session._label = broken
        before = degraded_count(session, "optimizer")
        record = session.execute(probe)
        assert record.invocation_reason == "negative_feedback"
        assert record.degraded
        assert not record.optimizer_invoked
        assert record.fallback_source == ""  # the executed plan stands
        assert record.executed_plan == record.predicted
        assert degraded_count(session, "optimizer") == before + 1


class TestAcceptanceStorm:
    """The ISSUE acceptance scenario: 20 % optimizer failure, 5 %
    predictor failure, torn-write persistence, 10k instances."""

    INSTANCES = 10_000
    SNAPSHOT_EVERY = 1_000

    def test_storm_completes_with_full_accounting(self, tmp_path):
        clock = VirtualClock()
        injector = FaultInjector.storm(
            optimizer_failure=0.2,
            predictor_failure=0.05,
            torn_write=0.5,
            seed=7,
            sleep=clock.sleep,
        )
        service = PlanCachingService.tpch(
            seed=0,
            fault_injector=injector,
            clock=clock,
            sleep=clock.sleep,
        )
        service.register("Q1")
        session = service.framework.session("Q1")
        dimensions = session.plan_space.dimensions
        rng = np.random.default_rng(11)
        points = rng.uniform(0.0, 1.0, size=(self.INSTANCES, dimensions))

        state_path = tmp_path / "q1-state.json"
        snapshots = {"clean": 0, "torn": 0}
        for index, x in enumerate(points):
            record = service.execute(service.instance_at("Q1", x))
            assert record.executed_plan >= 0  # always an executable plan
            clock.advance(0.001)
            if (index + 1) % self.SNAPSHOT_EVERY == 0:
                try:
                    injector.save_predictor(
                        session.online.predictor, state_path
                    )
                    snapshots["clean"] += 1
                except InjectedFault:
                    snapshots["torn"] += 1

        assert len(session.records) == self.INSTANCES

        resilience = service.metrics()["templates"]["Q1"]["resilience"]
        counts = injector.counts

        # Every injected predictor fault was caught and counted.
        assert resilience["degraded"]["predictor"] == counts.get(
            ("predictor", "exception"), 0
        )
        assert resilience["degraded"]["predictor"] > 0
        assert resilience["degraded"]["predictor_insert"] == counts.get(
            ("predictor_insert", "exception"), 0
        )

        # Optimizer accounting: each injected exception was either
        # absorbed by a retry or ended a call as retry-exhausted
        # (degrading to the fallback chain).  The breaker never opened
        # under this fault rate (exhaustion needs three consecutive
        # all-attempts failures), so degradations == exhaustions.
        assert resilience["breaker_state"] == CLOSED
        assert all(
            count == 0
            for count in resilience["breaker_transitions"].values()
        )
        assert counts.get(("optimizer", "exception"), 0) == (
            resilience["optimizer_retries"]
            + resilience["degraded"]["optimizer"]
        )
        assert resilience["optimizer_retries"] > 0

        # Exhausted optimizer calls were all served from the fallback
        # chain (the cache warms on the very first instance) — except
        # in the negative-feedback path, where the already-executed
        # plan stands and no fallback is needed.
        fallbacks = sum(resilience["fallback_served"].values())
        unverified_suspicions = sum(
            1
            for r in session.records
            if r.invocation_reason == "negative_feedback"
            and r.degraded
            and not r.optimizer_invoked
        )
        assert (
            fallbacks + unverified_suspicions
            == resilience["degraded"]["optimizer"]
        )
        degraded_records = sum(1 for r in session.records if r.degraded)
        assert degraded_records > 0
        if fallbacks:
            summary = resilience["fallback_suboptimality"]
            assert summary["count"] == fallbacks

        # Torn-write persistence: every snapshot attempt is accounted
        # for, and whatever state the file was left in reloads
        # non-strict into a functioning predictor.
        total_snapshots = self.INSTANCES // self.SNAPSHOT_EVERY
        assert snapshots["clean"] + snapshots["torn"] == total_snapshots
        assert snapshots["torn"] == counts.get(
            ("persistence", "torn_write"), 0
        )
        assert snapshots["torn"] > 0
        restored = load_predictor(
            state_path,
            strict=False,
            cold=lambda: cold_predictor(
                dimensions=dimensions,
                plan_count=session.plan_space.plan_count,
            ),
        )
        restored.insert(np.full(dimensions, 0.5), 0, cost=1.0)
        restored.predict(np.full(dimensions, 0.25))
