"""Figures 8-10 and Table II: the approximation ladder of Section V-A.

* :func:`run_approximation_ladder` (Figure 8) — BASELINE vs NAIVE vs
  APPROXIMATE-LSH precision/recall as the sample size ``|X|`` grows,
  under a comparable space regime.
* :func:`run_histogram_comparison` (Figure 9) — APPROXIMATE-LSH vs
  APPROXIMATE-LSH-HISTOGRAMS.
* :func:`run_confidence_sweep` (Table II) — precision/recall as the
  confidence threshold gamma increases.
* :func:`run_transform_sweep` (Figure 10a) — effect of the number of
  randomized transformations ``t``.
* :func:`run_bucket_sweep` (Figure 10b) — effect of the histogram
  bucket budget ``b_h`` (recall grows, precision stays flat).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baseline import BaselinePredictor
from repro.core.histogram_predictor import HistogramPredictor
from repro.core.lsh_predictor import LshPredictor
from repro.core.naive import NaivePredictor
from repro.geometry import equivalent_radius
from repro.experiments.setup import (
    DEFAULT_BUCKETS,
    DEFAULT_TRANSFORMS,
    OFFLINE_GAMMA,
    OFFLINE_RADIUS,
    SAMPLE_SIZES,
    OfflineResult,
    evaluate_offline,
    offline_truth,
)
from repro.rng import as_generator
from repro.tpch import plan_space_for
from repro.workload import sample_labeled_pool


def _grid_resolution(dimensions: int) -> int:
    """Buckets per axis for a ~4096-cell grid, capped at 8 per axis.

    Table I charges APPROXIMATE-LSH ``t`` times NAIVE's space (one grid
    per transform at the *same* resolution), so both use this value.
    """
    budget_cells = 4096
    return min(8, max(2, int(budget_cells ** (1.0 / dimensions))))


def run_approximation_ladder(
    template: str = "Q1",
    sample_sizes: tuple[int, ...] = SAMPLE_SIZES,
    transforms: int = DEFAULT_TRANSFORMS,
    radius: float = OFFLINE_RADIUS,
    gamma: float = OFFLINE_GAMMA,
    test_size: int = 1000,
    seed: int = 7,
) -> list[OfflineResult]:
    """Figure 8: the three-algorithm ladder across sample sizes."""
    plan_space = plan_space_for(template)
    rng = as_generator(seed)
    test, truth = offline_truth(plan_space, test_size, seed=11)
    dims = plan_space.dimensions
    # Radius enclosing the same sample mass as `radius` does in 2-D;
    # without this scaling a 6-D ball of radius 0.05 is simply empty.
    scaled_radius = equivalent_radius(radius, dims)
    resolution = _grid_resolution(dims)

    results = []
    for size in sample_sizes:
        pool = sample_labeled_pool(plan_space, size, seed=rng)
        algorithms = {
            "BASELINE": BaselinePredictor(pool, scaled_radius, gamma),
            # The single grid bucket containing the query point — the
            # structure whose misalignment the LSH ensemble fixes.
            "NAIVE": NaivePredictor(
                pool,
                plan_count=plan_space.plan_count,
                resolution=resolution,
                radius=scaled_radius,
                confidence_threshold=gamma,
                include_neighbors=False,
            ),
            "APPROXIMATE-LSH": LshPredictor(
                pool,
                plan_count=plan_space.plan_count,
                transforms=transforms,
                resolution=resolution,
                confidence_threshold=gamma,
                seed=rng,
            ),
        }
        for name, predictor in algorithms.items():
            metrics = evaluate_offline(predictor, test, truth)
            results.append(
                OfflineResult(
                    template, name, size, metrics, predictor.space_bytes()
                )
            )
    return results


def run_histogram_comparison(
    template: str = "Q5",
    sample_sizes: tuple[int, ...] = SAMPLE_SIZES,
    transforms: int = DEFAULT_TRANSFORMS,
    max_buckets: int = DEFAULT_BUCKETS,
    radius: float = OFFLINE_RADIUS,
    gamma: float = OFFLINE_GAMMA,
    test_size: int = 1000,
    seed: int = 7,
) -> list[OfflineResult]:
    """Figure 9: APPROXIMATE-LSH vs APPROXIMATE-LSH-HISTOGRAMS."""
    plan_space = plan_space_for(template)
    rng = as_generator(seed)
    test, truth = offline_truth(plan_space, test_size, seed=11)
    scaled_radius = equivalent_radius(radius, plan_space.dimensions)
    resolution = _grid_resolution(plan_space.dimensions)

    results = []
    for size in sample_sizes:
        pool = sample_labeled_pool(plan_space, size, seed=rng)
        algorithms = {
            "APPROXIMATE-LSH": LshPredictor(
                pool,
                plan_count=plan_space.plan_count,
                transforms=transforms,
                resolution=resolution,
                confidence_threshold=gamma,
                seed=rng,
            ),
            "APPROXIMATE-LSH-HISTOGRAMS": HistogramPredictor(
                pool,
                plan_count=plan_space.plan_count,
                transforms=transforms,
                resolution=16,
                max_buckets=max_buckets,
                radius=scaled_radius,
                confidence_threshold=gamma,
                seed=rng,
            ),
        }
        for name, predictor in algorithms.items():
            metrics = evaluate_offline(predictor, test, truth)
            results.append(
                OfflineResult(
                    template, name, size, metrics, predictor.space_bytes()
                )
            )
    return results


@dataclass(frozen=True)
class SweepRow:
    """One cell of a parameter sweep."""

    template: str
    parameter: str
    value: float
    precision: float
    recall: float


def run_confidence_sweep(
    template: str = "Q1",
    gammas: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
    sample_size: int = 3200,
    transforms: int = DEFAULT_TRANSFORMS,
    max_buckets: int = DEFAULT_BUCKETS,
    radii: tuple[float, ...] = (0.05, 0.1, 0.15, 0.2),
    test_size: int = 1000,
    seed: int = 7,
) -> list[SweepRow]:
    """Table II: precision/recall averaged over radii, per gamma."""
    plan_space = plan_space_for(template)
    rng = as_generator(seed)
    pool = sample_labeled_pool(plan_space, sample_size, seed=rng)
    test, truth = offline_truth(plan_space, test_size, seed=11)

    rows = []
    for gamma in gammas:
        cells = []
        for radius in radii:
            predictor = HistogramPredictor(
                pool,
                plan_count=plan_space.plan_count,
                transforms=transforms,
                max_buckets=max_buckets,
                radius=equivalent_radius(radius, plan_space.dimensions),
                confidence_threshold=gamma,
                seed=as_generator(seed + 1),
            )
            cells.append(evaluate_offline(predictor, test, truth))
        precision = float(np.mean([c.precision for c in cells]))
        recall = float(np.mean([c.recall for c in cells]))
        rows.append(SweepRow(template, "gamma", gamma, precision, recall))
    return rows


def run_transform_sweep(
    templates: tuple[str, ...] = ("Q1", "Q5", "Q7"),
    transform_counts: tuple[int, ...] = (3, 5, 7, 9, 11),
    sample_size: int = 3200,
    max_buckets: int = DEFAULT_BUCKETS,
    radius: float = OFFLINE_RADIUS,
    gamma: float = OFFLINE_GAMMA,
    test_size: int = 1000,
    seed: int = 7,
) -> list[SweepRow]:
    """Figure 10(a): precision as ``t`` grows (larger gains at higher r)."""
    rows = []
    for template in templates:
        plan_space = plan_space_for(template)
        pool = sample_labeled_pool(plan_space, sample_size, seed=seed)
        test, truth = offline_truth(plan_space, test_size, seed=11)
        for count in transform_counts:
            predictor = HistogramPredictor(
                pool,
                plan_count=plan_space.plan_count,
                transforms=count,
                max_buckets=max_buckets,
                radius=equivalent_radius(radius, plan_space.dimensions),
                confidence_threshold=gamma,
                seed=as_generator(seed + count),
            )
            metrics = evaluate_offline(predictor, test, truth)
            rows.append(
                SweepRow(
                    template, "t", count, metrics.precision, metrics.recall
                )
            )
    return rows


def run_bucket_sweep(
    template: str = "Q1",
    bucket_counts: tuple[int, ...] = (10, 20, 40, 80, 160),
    sample_size: int = 3200,
    transforms: int = DEFAULT_TRANSFORMS,
    radius: float = OFFLINE_RADIUS,
    gamma: float = OFFLINE_GAMMA,
    test_size: int = 1000,
    seed: int = 7,
) -> list[SweepRow]:
    """Figure 10(b): recall grows with ``b_h``; precision stays flat."""
    plan_space = plan_space_for(template)
    pool = sample_labeled_pool(plan_space, sample_size, seed=seed)
    test, truth = offline_truth(plan_space, test_size, seed=11)
    rows = []
    for buckets in bucket_counts:
        predictor = HistogramPredictor(
            pool,
            plan_count=plan_space.plan_count,
            transforms=transforms,
            max_buckets=buckets,
            radius=equivalent_radius(radius, plan_space.dimensions),
            confidence_threshold=gamma,
            seed=as_generator(seed),
        )
        metrics = evaluate_offline(predictor, test, truth)
        rows.append(
            SweepRow(template, "b_h", buckets, metrics.precision, metrics.recall)
        )
    return rows
