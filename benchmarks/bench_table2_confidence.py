"""Table II: precision as the confidence threshold gamma increases.

Q1, |X| = 3200, b_h = 40, t = 5, averaged over d in {0.05, 0.1, 0.15,
0.2}.  Paper shape: precision rises with gamma; recall is the price.
"""

from _bench_utils import write_result
from repro.experiments.approximation import run_confidence_sweep


def test_table2_confidence_sweep(benchmark):
    rows = benchmark.pedantic(
        run_confidence_sweep,
        kwargs=dict(
            template="Q1",
            gammas=(0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
            sample_size=3200,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Table II — precision/recall vs confidence threshold (Q1,",
        "|X| = 3200, b_h = 40, t = 5, averaged over d in {0.05..0.2})",
        "",
        f"{'gamma':>6s} {'precision':>10s} {'recall':>8s}",
    ]
    for row in rows:
        lines.append(f"{row.value:6.2f} {row.precision:10.3f} {row.recall:8.3f}")
    write_result("table2_confidence", lines)

    precisions = [row.precision for row in rows]
    recalls = [row.recall for row in rows]
    # Precision non-decreasing (within jitter), recall non-increasing.
    assert precisions[-1] >= precisions[0] - 0.02
    assert recalls[-1] <= recalls[0] + 0.02
