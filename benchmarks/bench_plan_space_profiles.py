"""Structural profiles of all nine plan spaces.

Extends Table III with the plan-diagram statistics that explain the
per-template difficulty ordering seen throughout Section V: the easy
templates (Q0-Q2) have few plans and little boundary exposure; the
mid-degree templates (Q4-Q5) expose the most boundary per sample, which
is exactly where the paper reports the lowest online recall.
"""

from _bench_utils import write_result
from repro.optimizer.diagnostics import profile_plan_space
from repro.tpch import TEMPLATE_NAMES, plan_space_for


def test_plan_space_profiles(benchmark):
    def run():
        return [
            profile_plan_space(plan_space_for(name), samples=3000, seed=3)
            for name in TEMPLATE_NAMES
        ]

    profiles = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Plan-space structural profiles (3000 probes per template)",
        "",
        f"{'name':>4s} {'r':>3s} {'plans':>6s} {'gini':>6s} "
        f"{'boundary':>9s} {'P(same|0.05)':>13s}",
    ]
    for profile in profiles:
        lines.append(
            f"{profile.template:>4s} {profile.dimensions:3d} "
            f"{profile.observed_plans:6d} {profile.gini:6.2f} "
            f"{profile.boundary_fraction:9.1%} "
            f"{profile.predictability[0.05]:13.2f}"
        )
    lines.append("")
    for profile in profiles:
        lines.append(profile.summary())
    write_result("plan_space_profiles", lines)

    by_name = {p.template: p for p in profiles}
    # Every space satisfies Assumption 1 at small distances.
    for profile in profiles:
        assert profile.predictability[0.01] > 0.85, profile.template
    # Degree-2 spaces are structurally easier than the degree-4 ones.
    assert (
        by_name["Q1"].boundary_fraction < by_name["Q5"].boundary_fraction
    )
