"""The unified benchmark harness behind ``repro bench``.

Every benchmark the repo ships (the pytest benches under
``benchmarks/`` and the CI gate) reports through one schema-v2
envelope — metric name/unit/direction with per-metric tolerances, the
workload's seeds and repeats, and an environment fingerprint
(python/numpy/platform/commit) — so results from different machines
and different PRs are comparable artifacts instead of ad-hoc JSON.

* :mod:`repro.bench.schema` — the envelope constructor + validator;
* :mod:`repro.bench.runners` — the measurement cores (shared by the
  pytest benches and ``repro bench run``) and the bench registry;
* :mod:`repro.bench.history` — the append-only run journal
  (``benchmarks/results/history.jsonl``);
* :mod:`repro.bench.compare` — MAD-based regression detection against
  the committed baseline snapshots (``repro bench compare`` exits 1 on
  any regression).
"""

from repro.bench.compare import compare_run, render_compare
from repro.bench.history import append_run, load_history, metric_history
from repro.bench.runners import BENCHES, SUITES, run_suite
from repro.bench.schema import (
    SCHEMA_VERSION,
    env_fingerprint,
    make_envelope,
    metric,
    validate_envelope,
)

__all__ = [
    "BENCHES",
    "SCHEMA_VERSION",
    "SUITES",
    "append_run",
    "compare_run",
    "env_fingerprint",
    "load_history",
    "make_envelope",
    "metric",
    "metric_history",
    "render_compare",
    "run_suite",
    "validate_envelope",
]
