"""Exact float comparison on a cluster boundary."""


def on_boundary(distance: float, radius: float) -> bool:
    return distance == 0.5 or radius != 1.0
