"""Experiment drivers for every table and figure of the paper.

Each module implements one experiment family and returns plain data
structures (lists of result rows); the scripts in ``benchmarks/`` print
them in the paper's format and ``EXPERIMENTS.md`` records the
paper-vs-measured comparison.

===========  ========================================================
Module       Reproduces
===========  ========================================================
assumptions  Figure 14 — plan choice predictability validation
comparison   Figure 3 — k-means vs single-linkage vs density predict
approximation  Figures 8-10, Table II — the approximation ladder
online_perf  Figures 11-12 — online precision/recall, feedback ablations
runtime_perf Figure 13 — end-to-end runtime simulation
drift        Section V-D — estimator accuracy and drift alarms
tables       Tables I and III — space accounting and template inventory
diagrams     Figures 2, 5, 6, 7 — plan diagrams and transform views
===========  ========================================================
"""

from repro.experiments import setup

__all__ = ["setup"]
