"""Retry with capped exponential backoff under a deadline.

The optimizer is the expensive, occasionally flaky dependency of the
decision flow: one failed invocation should not surface to the query,
but unbounded retrying must not stall it either.  :func:`retry_call`
makes that trade explicit — a bounded number of attempts, geometric
backoff capped per sleep, and a wall-clock deadline that cuts the
sequence short even when attempts remain.

Both the clock and the sleep are injectable so tests and fault storms
drive the schedule with a :class:`~repro.resilience.faults.VirtualClock`
instead of real waiting.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ResilienceError
from repro.resilience.clocks import system_clock, system_sleep


class RetryExhaustedError(ResilienceError):
    """Every attempt failed (or the deadline expired); ``__cause__``
    carries the last underlying exception."""


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for one guarded call.

    ``attempts`` counts total tries (1 = no retry).  The sleep before
    retry *k* (1-based) is ``min(max_delay, base_delay * multiplier**
    (k-1))``.  ``deadline`` bounds the whole sequence, sleeps included,
    in seconds; ``None`` disables it.
    """

    attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.25
    deadline: "float | None" = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ResilienceError("attempts must be >= 1")
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise ResilienceError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ResilienceError("multiplier must be >= 1")
        if self.deadline is not None and self.deadline <= 0.0:
            raise ResilienceError("deadline must be > 0")

    def delay(self, retry_index: int) -> float:
        """Sleep before the ``retry_index``-th retry (0-based)."""
        return min(
            self.max_delay, self.base_delay * self.multiplier**retry_index
        )


def retry_call(
    fn: Callable,
    policy: "RetryPolicy | None" = None,
    *,
    clock: "Callable[[], float] | None" = None,
    sleep: "Callable[[float], None] | None" = None,
    on_retry: "Callable[[], None] | None" = None,
) -> Any:
    """Call ``fn()`` under ``policy``; raise :class:`RetryExhaustedError`
    once attempts or the deadline run out.

    ``on_retry`` fires once per retry (not for the first attempt), so
    callers can count retries in their metrics.
    """
    policy = policy or RetryPolicy()
    clock = clock or system_clock
    sleep = sleep if sleep is not None else system_sleep
    start = clock()
    last_error: "Exception | None" = None
    for attempt in range(policy.attempts):
        try:
            return fn()
        except Exception as exc:  # noqa: BLE001 - the guard's whole job
            last_error = exc
        if attempt == policy.attempts - 1:
            break
        delay = policy.delay(attempt)
        if (
            policy.deadline is not None
            and clock() - start + delay > policy.deadline
        ):
            raise RetryExhaustedError(
                f"deadline of {policy.deadline}s expired after "
                f"{attempt + 1} attempt(s)"
            ) from last_error
        if on_retry is not None:
            on_retry()
        sleep(delay)
    raise RetryExhaustedError(
        f"all {policy.attempts} attempt(s) failed"
    ) from last_error


__all__ = ["RetryExhaustedError", "RetryPolicy", "retry_call"]
