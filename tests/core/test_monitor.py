"""Sliding precision/recall estimators and drift detection."""

import pytest

from repro.core.monitor import PerformanceMonitor
from repro.exceptions import ConfigurationError


class TestEstimates:
    def test_initial_state(self):
        monitor = PerformanceMonitor()
        assert monitor.precision_estimate == 1.0
        assert monitor.answer_rate == 0.0
        assert monitor.recall_estimate == 0.0

    def test_precision_tracks_correctness(self):
        monitor = PerformanceMonitor(window=10)
        for __ in range(8):
            monitor.record_prediction(0, True)
        for __ in range(2):
            monitor.record_prediction(0, False)
        assert monitor.precision_estimate == pytest.approx(0.8)

    def test_recall_is_beta_times_precision(self):
        monitor = PerformanceMonitor(window=100)
        for __ in range(6):
            monitor.record_prediction(1, True)
        for __ in range(4):
            monitor.record_null()
        assert monitor.answer_rate == pytest.approx(0.6)
        assert monitor.recall_estimate == pytest.approx(0.6 * 1.0)

    def test_window_forgets_old_evidence(self):
        monitor = PerformanceMonitor(window=5)
        for __ in range(5):
            monitor.record_prediction(0, False)
        for __ in range(5):
            monitor.record_prediction(0, True)
        assert monitor.precision_estimate == 1.0

    def test_per_plan_precision(self):
        monitor = PerformanceMonitor()
        monitor.record_prediction(0, True)
        monitor.record_prediction(1, False)
        assert monitor.plan_precision(0) == 1.0
        assert monitor.plan_precision(1) == 0.0
        assert monitor.plan_precision(99) == 1.0  # no evidence yet


class TestDrift:
    def test_no_alarm_without_evidence(self):
        monitor = PerformanceMonitor(drift_threshold=0.5, min_observations=30)
        for __ in range(10):
            monitor.record_prediction(0, False)
        assert not monitor.drift_detected()

    def test_alarm_after_sustained_failures(self):
        monitor = PerformanceMonitor(
            window=50, drift_threshold=0.5, min_observations=30
        )
        for __ in range(40):
            monitor.record_prediction(0, False)
        assert monitor.drift_detected()

    def test_healthy_precision_never_alarms(self):
        monitor = PerformanceMonitor(
            window=50, drift_threshold=0.5, min_observations=30
        )
        for __ in range(100):
            monitor.record_prediction(0, True)
        assert not monitor.drift_detected()

    def test_reset_clears_alarm(self):
        monitor = PerformanceMonitor(
            window=50, drift_threshold=0.5, min_observations=30
        )
        for __ in range(40):
            monitor.record_prediction(0, False)
        monitor.reset()
        assert not monitor.drift_detected()
        assert monitor.precision_estimate == 1.0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            PerformanceMonitor(drift_threshold=1.5)
