"""Equi-width, equi-depth and MaxDiff construction behaviour."""

import numpy as np
import pytest

from repro.exceptions import HistogramError
from repro.histograms import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    MaxDiffHistogram,
)


class TestEquiWidth:
    def test_bucket_boundaries_are_uniform(self):
        hist = EquiWidthHistogram(bucket_count=4)
        widths = [b.width for b in hist.buckets]
        assert widths == pytest.approx([0.25] * 4)

    def test_insert_routes_to_correct_bucket(self):
        hist = EquiWidthHistogram(bucket_count=4)
        hist.insert(0.26, cost=7.0)
        assert hist.buckets[1].count == 1
        assert hist.buckets[1].cost_sum == 7.0

    def test_insert_at_domain_upper_edge(self):
        hist = EquiWidthHistogram(bucket_count=4)
        hist.insert(1.0)
        assert hist.buckets[3].count == 1

    def test_out_of_domain_rejected(self):
        hist = EquiWidthHistogram(bucket_count=4)
        with pytest.raises(HistogramError):
            hist.insert(1.5)

    def test_invalid_bucket_count(self):
        with pytest.raises(HistogramError):
            EquiWidthHistogram(bucket_count=0)


class TestEquiDepth:
    def test_buckets_hold_equal_mass(self):
        values = np.linspace(0.0, 1.0, 100)
        hist = EquiDepthHistogram.build(values, bucket_count=4)
        counts = [b.count for b in hist.buckets]
        assert counts == pytest.approx([25.0] * 4)

    def test_boundaries_adapt_to_skew(self):
        # 90 points near 0, 10 near 1: most buckets should sit near 0.
        values = np.concatenate(
            [np.random.default_rng(0).uniform(0, 0.1, 90),
             np.random.default_rng(1).uniform(0.9, 1.0, 10)]
        )
        hist = EquiDepthHistogram.build(values, bucket_count=10)
        low_buckets = sum(1 for b in hist.buckets if b.hi <= 0.1)
        assert low_buckets >= 8

    def test_fewer_values_than_buckets(self):
        hist = EquiDepthHistogram.build([0.3, 0.7], bucket_count=40)
        assert hist.bucket_count <= 2
        assert hist.total_count == pytest.approx(2.0)

    def test_empty_input_gives_empty_histogram(self):
        hist = EquiDepthHistogram.build([], bucket_count=4)
        assert hist.bucket_count == 0
        assert hist.range_count(0.0, 1.0) == 0.0

    def test_misaligned_costs_rejected(self):
        with pytest.raises(HistogramError):
            EquiDepthHistogram.build([0.1, 0.2], costs=[1.0], bucket_count=4)


class TestMaxDiff:
    def test_boundaries_at_largest_gaps(self):
        # Two tight clusters separated by a huge gap: 2 buckets must
        # split exactly at the gap.
        values = [0.10, 0.11, 0.12, 0.90, 0.91]
        hist = MaxDiffHistogram.build(values, bucket_count=2)
        assert hist.bucket_count == 2
        assert hist.buckets[0].hi == pytest.approx(0.12)
        assert hist.buckets[1].lo == pytest.approx(0.90)

    def test_mass_conserved(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0, 1, 200)
        hist = MaxDiffHistogram.build(values, bucket_count=10)
        assert hist.total_count == pytest.approx(200.0)

    def test_single_value(self):
        hist = MaxDiffHistogram.build([0.5], costs=[3.0], bucket_count=8)
        assert hist.bucket_count == 1
        assert hist.range_cost(0.4, 0.6) == pytest.approx(3.0)

    def test_single_bucket_budget(self):
        hist = MaxDiffHistogram.build([0.1, 0.5, 0.9], bucket_count=1)
        assert hist.bucket_count == 1
        assert hist.total_count == pytest.approx(3.0)

    def test_duplicate_values_stay_together(self):
        values = [0.2] * 50 + [0.8] * 50
        hist = MaxDiffHistogram.build(values, bucket_count=5)
        # The only positive gap is between 0.2 and 0.8.
        point_two = hist.range_count(0.19, 0.21)
        point_eight = hist.range_count(0.79, 0.81)
        assert point_two == pytest.approx(50.0)
        assert point_eight == pytest.approx(50.0)
