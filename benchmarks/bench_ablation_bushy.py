"""Ablation: bushy vs left-deep join enumeration.

The substrate's DP enumerator is left-deep by default (like the
System-R lineage the paper's commercial optimizer descends from);
``allow_bushy=True`` adds composite-composite joins.  This bench
quantifies what bushy trees buy on the five-table template Q7 — the
cost improvement where they win, how often they win, and the
optimization-time overhead of the larger search space.
"""

import time

import numpy as np

from _bench_utils import write_result
from repro.optimizer.enumeration import DPEnumerator
from repro.tpch import build_catalog, query_template


def test_ablation_bushy_enumeration(benchmark):
    def run():
        catalog = build_catalog()
        template = query_template("Q7")
        left_deep = DPEnumerator(template, catalog, allow_bushy=False)
        bushy = DPEnumerator(template, catalog, allow_bushy=True)
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1, (40, 6))

        improvements = []
        wins = 0
        start = time.perf_counter()
        for point in points:
            __, cost_ld = left_deep.optimize(point[None, :])
            elapsed_ld = time.perf_counter() - start
        start = time.perf_counter()
        costs_bushy = []
        for point in points:
            __, cost = bushy.optimize(point[None, :])
            costs_bushy.append(cost)
        elapsed_bushy = time.perf_counter() - start

        for i, point in enumerate(points):
            __, cost_ld = left_deep.optimize(point[None, :])
            ratio = cost_ld / costs_bushy[i]
            improvements.append(ratio)
            if ratio > 1.0 + 1e-9:
                wins += 1
        return {
            "improvements": np.array(improvements),
            "wins": wins,
            "points": len(points),
            "time_ld": elapsed_ld,
            "time_bushy": elapsed_bushy,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    ratios = results["improvements"]
    lines = [
        "Ablation — bushy vs left-deep enumeration (Q7, 40 points)",
        "",
        f"points where bushy strictly wins : {results['wins']}/{results['points']}",
        f"cost ratio left-deep/bushy       : median {np.median(ratios):.3f}, "
        f"max {ratios.max():.3f}",
        f"enumeration overhead             : "
        f"{results['time_bushy'] / max(results['time_ld'], 1e-9):.1f}x "
        "optimizer time",
        "",
        "Bushy trees never lose (superset search space); on this star-",
        "shaped template they rarely win, which is why left-deep is the",
        "default — see tests/optimizer/test_bushy.py for a chain query",
        "where bushy wins decisively.",
    ]
    write_result("ablation_bushy", lines)

    # Superset property: bushy never worse.
    assert (ratios >= 1.0 - 1e-9).all()
