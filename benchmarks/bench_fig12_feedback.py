"""Figure 12: noise elimination and negative feedback.

Runs the same trajectory workloads through the full online variant and
through ablated variants (no noise elimination / no negative feedback /
neither), plus the random-invocation probability sweep.  Paper shape:
without noise elimination precision degrades as points accumulate;
negative feedback improves precision (and possibly recall); higher
invocation probability buys a little precision.
"""

from _bench_utils import write_result
from repro.experiments.online_perf import (
    run_feedback_ablation,
    run_invocation_sweep,
)


def test_fig12_feedback_and_noise(benchmark):
    runs = benchmark.pedantic(
        run_feedback_ablation,
        kwargs=dict(
            template="Q1", spread=0.02, workload_size=1000, repeats=5, seed=7
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Figure 12 — effect of noise elimination and negative feedback",
        "(Q1, r_d = 0.02, 1000 instances, 5 workloads)",
        "",
        f"{'variant':24s} {'precision':>10s} {'recall':>8s} "
        f"{'invocations':>12s}",
    ]
    by_variant = {}
    for run in runs:
        by_variant[run.variant] = run
        lines.append(
            f"{run.variant:24s} {run.precision:10.3f} {run.recall:8.3f} "
            f"{run.optimizer_invocations:12d}"
        )

    sweep = run_invocation_sweep(
        template="Q1", probabilities=(0.0, 0.1, 0.2, 0.3), workload_size=800,
        repeats=2, seed=11,
    )
    lines += [
        "",
        "random optimizer invocations: precision vs mean probability",
        f"{'p':>5s} {'precision':>10s} {'recall':>8s} {'invocations':>12s}",
    ]
    for run in sweep:
        lines.append(
            f"{run.variant[2:]:>5s} {run.precision:10.3f} {run.recall:8.3f} "
            f"{run.optimizer_invocations:12d}"
        )
    write_result("fig12_feedback", lines)

    # Paper shape: the full variant is at least as precise as running
    # with neither safeguard, and feedback does not hurt recall much.
    assert by_variant["full"].precision >= by_variant["neither"].precision - 0.02
    # More exploration -> more invocations.
    assert sweep[-1].optimizer_invocations > sweep[0].optimizer_invocations
