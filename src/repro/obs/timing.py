"""Timing helpers: ``@timed`` and ``time_block``.

Two ways to feed a :class:`~repro.obs.registry.LatencyHistogram`
without writing ``perf_counter`` arithmetic by hand:

* ``time_block(histogram)`` — context manager for ad-hoc regions;
* ``timed(registry, name, **labels)`` — decorator for whole functions.

Hot loops that cannot afford a context-manager frame per iteration
(e.g. the per-transform timing inside
:meth:`HistogramPredictor.median_counts`) call ``perf_counter``
directly and ``observe`` the accumulated total once.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from time import perf_counter

from repro.obs.registry import LatencyHistogram, MetricsRegistry


@contextmanager
def time_block(histogram: LatencyHistogram):
    """Record the wall-clock of the enclosed block into ``histogram``."""
    start = perf_counter()
    try:
        yield
    finally:
        histogram.observe(perf_counter() - start)


def timed(registry: MetricsRegistry, name: str, **labels):
    """Decorator: record every call's wall-clock under ``name``.

        @timed(registry, "ppc_stage_seconds", stage="rebuild")
        def rebuild(...): ...
    """
    histogram = registry.histogram(name, **labels)

    def decorate(function):
        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            start = perf_counter()
            try:
                return function(*args, **kwargs)
            finally:
                histogram.observe(perf_counter() - start)

        return wrapper

    return decorate
