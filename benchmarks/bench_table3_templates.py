"""Table III: the query templates and their plan-count lower bounds.

Probes every template's plan space at a finite set of points, exactly
how the paper estimated its plan counts.  Times one full DP
optimization of the six-parameter template.
"""

import numpy as np

from _bench_utils import write_result
from repro.experiments.tables import run_template_inventory
from repro.tpch import build_catalog, query_template
from repro.optimizer.enumeration import DPEnumerator


def test_table3_template_inventory(benchmark):
    rows = run_template_inventory(probe_points=2000, seed=7)
    lines = [
        "Table III — query templates (plan counts are lower bounds from",
        "probing the optimizer at 2000 plan-space points)",
        "",
        f"{'name':>4s} {'degree':>7s} {'plans':>6s}  tables",
    ]
    for row in rows:
        lines.append(
            f"{row.name:>4s} {row.parameter_degree:7d} "
            f"{row.estimated_plan_count:6d}  {', '.join(row.tables)}"
        )
    lines.append("")
    for row in rows:
        lines.append(f"{row.name}: {row.sql}")
    write_result("table3_templates", lines)

    degrees = [r.parameter_degree for r in rows]
    assert min(degrees) == 2 and max(degrees) == 6
    assert all(r.estimated_plan_count >= 2 for r in rows)

    enumerator = DPEnumerator(query_template("Q7"), build_catalog())
    point = np.full((1, 6), 0.5)
    benchmark(enumerator.optimize, point)
