"""Property-based tests on histogram invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histograms import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    IncrementalHistogram,
    MaxDiffHistogram,
)

unit_floats = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(unit_floats, min_size=1, max_size=200)
budgets = st.integers(min_value=1, max_value=50)


@st.composite
def values_and_budget(draw):
    return draw(value_lists), draw(budgets)


@pytest.mark.parametrize(
    "builder", [EquiWidthHistogram, EquiDepthHistogram, MaxDiffHistogram]
)
class TestStaticInvariants:
    @given(data=values_and_budget())
    @settings(max_examples=50, deadline=None)
    def test_mass_conserved(self, builder, data):
        values, budget = data
        hist = builder.build(values, bucket_count=budget)
        assert hist.total_count == pytest.approx(len(values))

    @given(data=values_and_budget())
    @settings(max_examples=50, deadline=None)
    def test_full_domain_query_returns_total(self, builder, data):
        values, budget = data
        hist = builder.build(values, bucket_count=budget)
        assert hist.range_count(0.0, 1.0) == pytest.approx(len(values), rel=1e-6)

    @given(data=values_and_budget(), lo=unit_floats, hi=unit_floats)
    @settings(max_examples=50, deadline=None)
    def test_range_count_bounded_and_nonnegative(self, builder, data, lo, hi):
        values, budget = data
        hist = builder.build(values, bucket_count=budget)
        count = hist.range_count(lo, hi)
        assert 0.0 <= count <= len(values) + 1e-9

    @given(data=values_and_budget())
    @settings(max_examples=50, deadline=None)
    def test_budget_respected(self, builder, data):
        values, budget = data
        hist = builder.build(values, bucket_count=budget)
        assert hist.bucket_count <= budget


class TestIncrementalInvariants:
    @given(data=values_and_budget())
    @settings(max_examples=50, deadline=None)
    def test_mass_conserved_under_insertion(self, data):
        values, budget = data
        hist = IncrementalHistogram(max_buckets=budget)
        for v in values:
            hist.insert(v)
        assert hist.total_count == pytest.approx(len(values))
        assert hist.bucket_count <= budget

    @given(data=values_and_budget())
    @settings(max_examples=50, deadline=None)
    def test_buckets_ordered(self, data):
        values, budget = data
        hist = IncrementalHistogram(max_buckets=budget)
        for v in values:
            hist.insert(v)
        los = [b.lo for b in hist.buckets]
        assert los == sorted(los)

    @given(values=value_lists)
    @settings(max_examples=50, deadline=None)
    def test_cost_totals_preserved(self, values):
        hist = IncrementalHistogram(max_buckets=7)
        for i, v in enumerate(values):
            hist.insert(v, cost=float(i))
        stored = sum(b.cost_sum for b in hist.buckets)
        assert stored == pytest.approx(sum(range(len(values))))

    @given(values=value_lists, split=unit_floats)
    @settings(max_examples=50, deadline=None)
    def test_range_additivity(self, values, split):
        """count[0, s] + count[s, 1] >= total (point masses at the split
        may be counted twice, never lost)."""
        hist = IncrementalHistogram(max_buckets=10)
        for v in values:
            hist.insert(v)
        left = hist.range_count(0.0, split)
        right = hist.range_count(split, 1.0)
        assert left + right >= len(values) - 1e-6

    def test_equidepth_distinct_values_near_equal_counts(self):
        rng = np.random.default_rng(5)
        values = rng.permutation(np.linspace(0.0, 1.0, 120))
        hist = EquiDepthHistogram.build(values, bucket_count=6)
        counts = [b.count for b in hist.buckets]
        assert max(counts) - min(counts) <= 1.0
