"""Unit tests for the plan-space quality scorecard."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.config import PPCConfig
from repro.core.framework import TemplateSession
from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry
from repro.obs import names as metric_names
from repro.obs.quality import (
    compute_scorecard,
    export_quality_gauges,
    rolling_window_stats,
    synopsis_scorecard,
)
from repro.workload import RandomTrajectoryWorkload


class TestSynopsisScorecard:
    def test_rejects_wrong_rank(self):
        with pytest.raises(ConfigurationError):
            synopsis_scorecard(np.zeros((2, 3)))

    def test_empty_synopsis_scores_zero(self):
        card = synopsis_scorecard(np.zeros((2, 3, 8)))
        assert card["coverage"] == 0.0
        assert card["purity"] == 0.0
        assert card["entropy"] == 0.0
        assert card["occupied_cells"] == 0
        assert card["probe_cells"] == 8

    def test_single_plan_cells_are_pure(self):
        densities = np.zeros((1, 3, 4))
        densities[0, 1, 0] = 2.0
        densities[0, 1, 2] = 3.0
        card = synopsis_scorecard(densities)
        assert card["coverage"] == pytest.approx(0.5)
        assert card["purity"] == pytest.approx(1.0)
        assert card["entropy"] == pytest.approx(0.0)
        assert card["occupied_cells"] == 2

    def test_evenly_mixed_cells_maximize_entropy(self):
        # Two plans sharing every occupied cell 50/50: purity 0.5,
        # normalized entropy 1.0.
        densities = np.zeros((1, 2, 4))
        densities[0, :, 1] = 1.0
        densities[0, :, 3] = 2.0
        card = synopsis_scorecard(densities)
        assert card["purity"] == pytest.approx(0.5)
        assert card["entropy"] == pytest.approx(1.0)

    def test_coverage_averages_over_transforms(self):
        densities = np.zeros((2, 1, 4))
        densities[0, 0, :] = 1.0  # transform 0 fully covered
        # transform 1 empty
        card = synopsis_scorecard(densities)
        assert card["coverage"] == pytest.approx(0.5)


@dataclass
class _FakeRecord:
    predicted: "int | None"
    confidence: float
    correct: bool
    suboptimality: float
    degraded: bool = False


class TestRollingWindowStats:
    def test_empty_records(self):
        stats = rolling_window_stats([], gamma=0.8)
        assert stats["window"] == 0
        assert stats["accuracy"] == 0.0
        assert stats["answered_fraction"] == 0.0

    def test_window_clips_to_the_tail(self):
        old = [_FakeRecord(0, 0.9, False, 2.0) for __ in range(50)]
        new = [_FakeRecord(0, 0.9, True, 1.0) for __ in range(10)]
        stats = rolling_window_stats(old + new, gamma=0.8, window=10)
        assert stats["window"] == 10
        assert stats["accuracy"] == 1.0
        assert stats["regret"] == 0.0

    def test_mixed_window_statistics(self):
        records = [
            _FakeRecord(3, 0.95, True, 1.0),
            _FakeRecord(None, 0.10, False, 1.0),  # NULL: not answered
            _FakeRecord(5, 0.85, False, 1.5, degraded=True),
        ]
        stats = rolling_window_stats(records, gamma=0.8, window=10)
        assert stats["window"] == 3
        assert stats["accuracy"] == pytest.approx(0.5)  # of 2 answered
        assert stats["regret"] == pytest.approx(0.5 / 3)
        assert stats["confidence_margin"] == pytest.approx(
            ((0.95 - 0.8) + (0.85 - 0.8)) / 2
        )
        assert stats["answered_fraction"] == pytest.approx(2 / 3)
        assert stats["degraded_fraction"] == pytest.approx(1 / 3)


class TestComputeScorecard:
    @pytest.fixture()
    def session(self, tiny_space):
        config = PPCConfig(
            confidence_threshold=0.7,
            mean_invocation_probability=0.05,
            drift_response=False,
        )
        session = TemplateSession(tiny_space, config, seed=9)
        workload = RandomTrajectoryWorkload(2, spread=0.05, seed=3)
        for x in workload.generate(120):
            session.execute(x)
        return session

    def test_scorecard_shape_and_ranges(self, session):
        card = compute_scorecard(session, probes=32, window=50)
        assert card["template"] == "tiny"
        assert card["executions"] == 120
        synopsis = card["synopsis"]
        assert 0.0 < synopsis["coverage"] <= 1.0
        assert 0.0 < synopsis["purity"] <= 1.0
        assert 0.0 <= synopsis["entropy"] <= 1.0
        assert synopsis["total_points"] > 0
        assert synopsis["space_bytes"] > 0
        rolling = card["rolling"]
        assert rolling["window"] == 50
        assert 0.0 <= rolling["accuracy"] <= 1.0
        assert rolling["regret"] >= 0.0
        assert "drift_pressure" in card["monitor"]
        assert "regret_attribution" in card

    def test_attribution_can_be_skipped(self, session):
        card = compute_scorecard(session, include_attribution=False)
        assert "regret_attribution" not in card

    def test_scorecard_is_read_only(self, session):
        before = (
            len(session.records),
            session.optimizer_invocations,
            session.online.space_bytes(),
        )
        compute_scorecard(session, probes=32, window=50)
        after = (
            len(session.records),
            session.optimizer_invocations,
            session.online.space_bytes(),
        )
        assert before == after
        # Deterministic: computing it twice yields the same card.
        a = compute_scorecard(session, probes=32, window=50)
        b = compute_scorecard(session, probes=32, window=50)
        assert a == b

    def test_export_sets_every_quality_gauge(self, session):
        registry = MetricsRegistry()
        card = export_quality_gauges(session, registry, probes=32, window=50)
        for name, expected in (
            (metric_names.QUALITY_COVERAGE, card["synopsis"]["coverage"]),
            (metric_names.QUALITY_PURITY, card["synopsis"]["purity"]),
            (metric_names.QUALITY_ENTROPY, card["synopsis"]["entropy"]),
            (metric_names.QUALITY_ACCURACY, card["rolling"]["accuracy"]),
            (metric_names.QUALITY_REGRET, card["rolling"]["regret"]),
            (
                metric_names.QUALITY_CONFIDENCE_MARGIN,
                card["rolling"]["confidence_margin"],
            ),
            (
                metric_names.QUALITY_DRIFT_PRESSURE,
                card["monitor"]["drift_pressure"],
            ),
        ):
            assert registry.gauge_value(
                name, template="tiny"
            ) == pytest.approx(expected)
