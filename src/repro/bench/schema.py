"""Schema v2 of the committed benchmark snapshots (``BENCH_*.json``).

Version 1 was whatever dict each bench happened to dump; nothing could
be compared mechanically.  Version 2 is a uniform envelope::

    {
      "schema_version": 2,
      "bench": "predict_throughput",
      "env":  {"python": ..., "numpy": ..., "platform": ...,
               "machine": ..., "commit": ..., "version": ...},
      "workload": {..., "seeds": {...}},          # what ran
      "metrics": {
        "batch_us_per_instance": {
          "value": 15.9, "unit": "us/instance",
          "direction": "lower",                   # which way is better
          "tolerance_pct": 100.0                  # and/or tolerance_abs
        }, ...
      },
      "gate": {...},                              # the bench's own bar
      "details": {...}                            # free-form extras
    }

The per-metric ``direction`` + tolerance travel *with the committed
baseline*, so ``repro bench compare`` needs no out-of-band config: a
fresh run regresses exactly when a metric worsens past the baseline's
declared allowance (widened by measured noise — see
:mod:`repro.bench.compare`).

:func:`validate_envelope` collects every problem and raises one
:class:`~repro.exceptions.BenchError`; the committed snapshots are
validated in the tier-1 suite.
"""

from __future__ import annotations

import json
import math
import pathlib
import platform as _platform
from typing import Any

import numpy as np

from repro.buildinfo import VERSION, commit_id
from repro.exceptions import BenchError

__all__ = [
    "DIRECTIONS",
    "SCHEMA_VERSION",
    "env_fingerprint",
    "load_envelope",
    "make_envelope",
    "metric",
    "validate_envelope",
]

SCHEMA_VERSION = 2

#: Which way a metric improves.
DIRECTIONS = ("lower", "higher")

_ENV_KEYS = ("python", "numpy", "platform", "machine", "commit", "version")


def env_fingerprint() -> dict[str, str]:
    """Where this measurement ran: interpreter, numpy, OS, commit."""
    return {
        "python": _platform.python_version(),
        "numpy": np.__version__,
        "platform": _platform.platform(),
        "machine": _platform.machine(),
        "commit": commit_id(),
        "version": VERSION,
    }


def metric(
    value: float,
    unit: str,
    direction: str = "lower",
    tolerance_pct: "float | None" = None,
    tolerance_abs: "float | None" = None,
) -> dict[str, Any]:
    """One envelope metric entry.

    ``tolerance_pct`` is relative to the committed baseline value (the
    right shape for throughput numbers on noisy shared runners);
    ``tolerance_abs`` is in the metric's own unit (the right shape for
    overhead percentages, which hover near zero).  At least one must be
    given — a metric without a declared allowance cannot be gated.
    """
    if direction not in DIRECTIONS:
        raise BenchError(f"metric direction must be one of {DIRECTIONS}")
    if tolerance_pct is None and tolerance_abs is None:
        raise BenchError("metric needs tolerance_pct and/or tolerance_abs")
    entry: dict[str, Any] = {
        "value": float(value),
        "unit": unit,
        "direction": direction,
    }
    if tolerance_pct is not None:
        entry["tolerance_pct"] = float(tolerance_pct)
    if tolerance_abs is not None:
        entry["tolerance_abs"] = float(tolerance_abs)
    return entry


def make_envelope(
    bench: str,
    metrics: dict[str, dict[str, Any]],
    workload: "dict[str, Any] | None" = None,
    gate: "dict[str, Any] | None" = None,
    details: "dict[str, Any] | None" = None,
) -> dict[str, Any]:
    """Assemble and validate one schema-v2 envelope."""
    envelope: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "bench": bench,
        "env": env_fingerprint(),
        "workload": workload if workload is not None else {},
        "metrics": metrics,
    }
    if gate is not None:
        envelope["gate"] = gate
    if details is not None:
        envelope["details"] = details
    validate_envelope(envelope)
    return envelope


def _check_metric(name: str, entry: Any, problems: list[str]) -> None:
    if not isinstance(entry, dict):
        problems.append(f"metric {name!r} is not an object")
        return
    value = entry.get("value")
    if (
        isinstance(value, bool)
        or not isinstance(value, (int, float))
        or not math.isfinite(value)
    ):
        problems.append(f"metric {name!r} value must be a finite number")
    if not isinstance(entry.get("unit"), str) or not entry["unit"]:
        problems.append(f"metric {name!r} needs a non-empty unit")
    if entry.get("direction") not in DIRECTIONS:
        problems.append(
            f"metric {name!r} direction must be one of {DIRECTIONS}"
        )
    tolerances = 0
    for key in ("tolerance_pct", "tolerance_abs"):
        if key not in entry:
            continue
        tolerance = entry[key]
        if (
            isinstance(tolerance, bool)
            or not isinstance(tolerance, (int, float))
            or not math.isfinite(tolerance)
            or tolerance < 0
        ):
            problems.append(f"metric {name!r} {key} must be a number >= 0")
        else:
            tolerances += 1
    if not tolerances:
        problems.append(
            f"metric {name!r} needs tolerance_pct and/or tolerance_abs"
        )


def validate_envelope(payload: Any) -> None:
    """Raise :class:`BenchError` listing every schema violation."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        raise BenchError("envelope is not a JSON object")
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {payload.get('schema_version')!r}"
        )
    if not isinstance(payload.get("bench"), str) or not payload["bench"]:
        problems.append("bench must be a non-empty string")
    env = payload.get("env")
    if not isinstance(env, dict):
        problems.append("env fingerprint missing")
    else:
        for key in _ENV_KEYS:
            if not isinstance(env.get(key), str) or not env[key]:
                problems.append(f"env.{key} must be a non-empty string")
    if not isinstance(payload.get("workload"), dict):
        problems.append("workload must be an object")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("metrics must be a non-empty object")
    else:
        for name, entry in metrics.items():
            _check_metric(name, entry, problems)
    for optional in ("gate", "details"):
        if optional in payload and not isinstance(payload[optional], dict):
            problems.append(f"{optional} must be an object")
    if problems:
        raise BenchError(
            f"invalid bench envelope ({len(problems)} problem(s)): "
            + "; ".join(problems)
        )


def load_envelope(path: "str | pathlib.Path") -> dict[str, Any]:
    """Read + validate a committed ``BENCH_*.json`` snapshot."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise BenchError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchError(f"baseline {path} is not JSON: {exc}") from exc
    validate_envelope(payload)
    return payload
