"""V-Optimal histogram: DP optimality and invariants."""

import numpy as np
import pytest

from repro.exceptions import HistogramError
from repro.histograms import MaxDiffHistogram, VOptimalHistogram
from repro.histograms.voptimal import _voptimal_boundaries


def _bucket_variance(histogram, values):
    """Total weighted within-bucket variance of a value set."""
    values = np.sort(np.asarray(values, dtype=float))
    total = 0.0
    for bucket in histogram.buckets:
        members = values[(values >= bucket.lo) & (values <= bucket.hi)]
        if members.size:
            total += ((members - members.mean()) ** 2).sum()
    return total


class TestConstruction:
    def test_two_clusters_split_exactly(self):
        values = [0.1, 0.11, 0.12, 0.88, 0.9]
        hist = VOptimalHistogram.build(values, bucket_count=2)
        assert hist.bucket_count == 2
        assert hist.buckets[0].hi <= 0.12
        assert hist.buckets[1].lo >= 0.88

    def test_mass_conserved(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 1, 300)
        hist = VOptimalHistogram.build(values, bucket_count=12)
        assert hist.total_count == pytest.approx(300.0)
        assert hist.bucket_count <= 12

    def test_costs_conserved(self):
        values = [0.1, 0.2, 0.8, 0.9]
        costs = [1.0, 2.0, 3.0, 4.0]
        hist = VOptimalHistogram.build(values, costs, bucket_count=2)
        assert sum(b.cost_sum for b in hist.buckets) == pytest.approx(10.0)

    def test_empty_input(self):
        hist = VOptimalHistogram.build([], bucket_count=4)
        assert hist.bucket_count == 0

    def test_single_value(self):
        hist = VOptimalHistogram.build([0.4] * 20, bucket_count=4)
        assert hist.bucket_count == 1
        assert hist.buckets[0].count == 20

    def test_invalid_budget(self):
        with pytest.raises(HistogramError):
            VOptimalHistogram.build([0.5], bucket_count=0)

    def test_large_input_coarsened(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 1, 5000)
        hist = VOptimalHistogram.build(values, bucket_count=20)
        assert hist.total_count == pytest.approx(5000.0)
        assert hist.bucket_count <= 20


class TestOptimality:
    def test_never_worse_than_maxdiff(self):
        """V-Optimal minimizes within-bucket variance; MaxDiff only
        approximates that objective."""
        rng = np.random.default_rng(2)
        values = np.concatenate(
            [
                rng.normal(0.2, 0.03, 120),
                rng.normal(0.5, 0.01, 60),
                rng.normal(0.8, 0.05, 120),
            ]
        ).clip(0, 1)
        for buckets in (4, 8):
            voptimal = VOptimalHistogram.build(values, bucket_count=buckets)
            maxdiff = MaxDiffHistogram.build(values, bucket_count=buckets)
            assert _bucket_variance(voptimal, values) <= _bucket_variance(
                maxdiff, values
            ) + 1e-9

    def test_dp_matches_bruteforce_small(self):
        """On tiny inputs, compare the DP against exhaustive search."""
        import itertools

        values = np.array([0.05, 0.1, 0.4, 0.45, 0.9])
        counts = np.ones(5)
        b = 2
        dp_bounds = _voptimal_boundaries(values, counts, b)

        def error(bounds):
            total = 0.0
            for start, stop in bounds:
                chunk = values[start:stop]
                total += ((chunk - chunk.mean()) ** 2).sum()
            return total

        best = np.inf
        for split in itertools.combinations(range(1, 5), b - 1):
            edges = [0, *split, 5]
            bounds = list(zip(edges, edges[1:], strict=False))
            best = min(best, error(bounds))
        assert error(dp_bounds) == pytest.approx(best)
