"""The workload history of Definition 3.

A sequence of tuples from ``Q x Phi x P x R+``: which template ran,
at which plan-space point, which plan the optimizer chose, and what the
execution cost was.  The history is what the PPC framework harvests its
plan-space knowledge from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.point import SamplePool
from repro.exceptions import WorkloadError


@dataclass(frozen=True)
class HistoryEntry:
    """One executed query instance."""

    template_name: str
    point: np.ndarray
    plan_id: int
    cost: float


class WorkloadHistory:
    """Append-only execution log across templates."""

    def __init__(self) -> None:
        self._entries: list[HistoryEntry] = []

    def record(
        self,
        template_name: str,
        point: np.ndarray,
        plan_id: int,
        cost: float,
    ) -> HistoryEntry:
        if cost < 0.0:
            raise WorkloadError("execution cost must be non-negative")
        entry = HistoryEntry(
            template_name,
            np.asarray(point, dtype=float).reshape(-1),
            int(plan_id),
            float(cost),
        )
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def templates(self) -> set[str]:
        return {entry.template_name for entry in self._entries}

    def for_template(self, template_name: str) -> list[HistoryEntry]:
        return [e for e in self._entries if e.template_name == template_name]

    def sample_pool(self, template_name: str) -> SamplePool:
        """Project one template's history onto a predictor sample pool."""
        entries = self.for_template(template_name)
        if not entries:
            raise WorkloadError(
                f"no history for template {template_name!r}"
            )
        pool = SamplePool(entries[0].point.shape[0])
        for entry in entries:
            pool.add(entry.point, entry.plan_id, entry.cost)
        return pool
