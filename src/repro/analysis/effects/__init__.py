"""Whole-program effect analysis and the RPR1xx rule family.

Layers on top of the per-file linter: :mod:`~repro.analysis.effects
.engine` builds the project call graph and propagates per-function
effect signatures (RNG, clock, I/O, shared-state mutation, raised
exceptions) to a fixpoint; :mod:`~repro.analysis.effects.rules` turns
the result into four interprocedural proofs:

``RPR101``
    the observability read path (quality/timeseries/audit/slo) is
    transitively pure;
``RPR102``
    no path from ``TemplateSession.execute``/``execute_batch`` or a
    core ``predict_batch`` reaches unseeded RNG or the raw wall clock;
``RPR103``
    every runtime synopsis mutation bumps ``mutation_count`` (the
    batch-invalidation contract);
``RPR104``
    exceptions escaping the public API are documented
    ``repro.exceptions`` types.

Run via ``repro lint --effects`` (add ``--graph-out`` for the call
graph artifact); ``--selftest`` covers these rules through
:func:`run_effects_selftest`.
"""

from repro.analysis.effects.engine import (
    Project,
    build_project,
    build_project_from_sources,
    write_graph,
)
from repro.analysis.effects.rules import (
    EffectRule,
    analyze_paths,
    analyze_sources,
    effect_rules,
    run_effect_rules,
)
from repro.analysis.effects.selftest import (
    EFFECT_SELFTEST_CASES,
    run_effects_selftest,
)

__all__ = [
    "EFFECT_SELFTEST_CASES",
    "EffectRule",
    "Project",
    "analyze_paths",
    "analyze_sources",
    "build_project",
    "build_project_from_sources",
    "effect_rules",
    "run_effect_rules",
    "run_effects_selftest",
    "write_graph",
]
