"""Public surface with holes in its signatures."""


def execute(point):
    return point


class Session:
    def __init__(self, config, clock=None):
        self.config = config
        self.clock = clock

    def predict(self, point: float):
        return point
