"""MaxDiff histogram: boundaries at the largest gaps in the data.

The MaxDiff(V, A) family (Poosala et al.) places bucket boundaries
where adjacent sorted values differ the most, so that each bucket spans
a region of near-uniform density.  This is the "standard histogram
construction technique that chooses boundaries to minimize estimation
error" that the paper credits for the precision advantage of
APPROXIMATE-LSH-HISTOGRAMS over fixed grids (Section V-A).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import HistogramError
from repro.histograms.base import Bucket, Histogram


class MaxDiffHistogram(Histogram):
    """Histogram with boundaries at the ``bucket_count - 1`` widest gaps."""

    @classmethod
    def build(
        cls,
        values: Sequence[float],
        costs: Sequence[float] | None = None,
        bucket_count: int = 40,
        domain: tuple[float, float] = (0.0, 1.0),
    ) -> "MaxDiffHistogram":
        if bucket_count < 1:
            raise HistogramError("bucket_count must be >= 1")
        hist = cls(domain)
        data = np.asarray(values, dtype=float)
        if data.size == 0:
            return hist
        lo, hi = hist.domain
        if data.min() < lo or data.max() > hi:
            raise HistogramError("values outside histogram domain")
        if costs is None:
            cost_data = np.zeros_like(data)
        else:
            cost_data = np.asarray(costs, dtype=float)
            if cost_data.shape != data.shape:
                raise HistogramError("values and costs must align")

        order = np.argsort(data, kind="stable")
        data = data[order]
        cost_data = cost_data[order]

        if data.size == 1 or bucket_count == 1:
            hist.buckets = [
                Bucket(float(data[0]), float(data[-1]), float(data.size),
                       float(cost_data.sum()))
            ]
            return hist

        gaps = np.diff(data)
        split_budget = min(bucket_count - 1, data.size - 1)
        # Indices of the largest gaps; a split after sorted index i means a
        # boundary between data[i] and data[i + 1].
        split_after = np.sort(np.argpartition(gaps, -split_budget)[-split_budget:])

        start = 0
        for split in list(split_after) + [data.size - 1]:
            stop = int(split) + 1
            if stop <= start:
                continue
            chunk = data[start:stop]
            hist.buckets.append(
                Bucket(
                    lo=float(chunk[0]),
                    hi=float(chunk[-1]),
                    count=float(stop - start),
                    cost_sum=float(cost_data[start:stop].sum()),
                )
            )
            start = stop
        return hist
