"""Multi-window SLO burn-rate evaluation over the telemetry series.

Declarative :class:`~repro.config.SLODefinition` objects are evaluated
against the :class:`~repro.obs.timeseries.TimeSeriesStore`'s windowed
reads — never against raw lifetime counters, so a bad hour shows up
even after a good week.  Each SLO yields a *burn rate* per window
(1.0 = consuming the error budget exactly at the objective) and the
standard multi-window state:

* ``breach`` — **both** windows burn at ``breach_burn`` or more: the
  problem is sustained and fast;
* ``warning`` — **either** window burns at ``warning_burn`` or more:
  a short blip or a slow leak;
* ``ok`` — otherwise (including "no data yet": an idle service is not
  failing its objectives).

States and burn rates are exported as ``ppc_slo_state`` /
``ppc_slo_burn_rate`` gauges so the Prometheus scrape and
``service.metrics()["slo"]`` always agree.
"""

from __future__ import annotations

from typing import Any

from repro.config import SLO_STATES, SLODefinition
from repro.exceptions import ConfigurationError
from repro.obs import names
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import TimeSeriesStore

__all__ = ["SLOEngine", "evaluate_slo"]


def _burn_rate(
    slo: SLODefinition,
    store: TimeSeriesStore,
    template: str,
    window: float,
    now: float,
) -> float:
    """Error-budget burn of one signal over one window (0.0 = idle)."""
    if slo.signal == "hit_rate":
        hits = store.counter_delta(
            names.CACHE_EVENTS_TOTAL,
            window,
            now,
            template=template,
            event="hit",
        )
        misses = store.counter_delta(
            names.CACHE_EVENTS_TOTAL,
            window,
            now,
            template=template,
            event="miss",
        )
        total = hits + misses
        if total <= 0.0:
            return 0.0
        budget = 1.0 - slo.objective
        return (misses / total) / budget if budget > 0.0 else 0.0
    if slo.signal == "predict_p95":
        p95 = store.histogram_field_max(
            names.STAGE_SECONDS,
            "p95",
            window,
            now,
            template=template,
            stage="predict",
        )
        if p95 is None:
            return 0.0
        return p95 / slo.objective
    if slo.signal == "regret":
        regret = store.counter_delta(
            names.REGRET_TOTAL, window, now, template=template
        )
        executions = store.counter_delta(
            names.EXECUTIONS_TOTAL, window, now, template=template
        )
        if executions <= 0.0:
            return 0.0
        return (regret / executions) / slo.objective
    raise ConfigurationError(f"unknown SLO signal {slo.signal!r}")


def evaluate_slo(
    slo: SLODefinition,
    store: TimeSeriesStore,
    template: str,
    now: "float | None" = None,
) -> dict[str, Any]:
    """Evaluate one SLO for one template; JSON-ready verdict."""
    if now is None:
        now = store.now()
    burn_short = _burn_rate(slo, store, template, slo.short_window, now)
    burn_long = _burn_rate(slo, store, template, slo.long_window, now)
    if min(burn_short, burn_long) >= slo.breach_burn:
        state = "breach"
    elif max(burn_short, burn_long) >= slo.warning_burn:
        state = "warning"
    else:
        state = "ok"
    return {
        "name": slo.name,
        "signal": slo.signal,
        "objective": slo.objective,
        "state": state,
        "burn_short": burn_short,
        "burn_long": burn_long,
        "short_window": slo.short_window,
        "long_window": slo.long_window,
        "warning_burn": slo.warning_burn,
        "breach_burn": slo.breach_burn,
    }


class SLOEngine:
    """Evaluates a fixed SLO set per template and exports the verdicts."""

    def __init__(
        self,
        store: TimeSeriesStore,
        slos: "tuple[SLODefinition, ...]",
        registry: MetricsRegistry,
    ) -> None:
        seen: set[str] = set()
        for slo in slos:
            if slo.name in seen:
                raise ConfigurationError(
                    f"duplicate SLO name {slo.name!r}"
                )
            seen.add(slo.name)
        self._store = store
        self._slos = tuple(slos)
        self._registry = registry

    @property
    def slos(self) -> "tuple[SLODefinition, ...]":
        return self._slos

    def evaluate(
        self, template: str, now: "float | None" = None
    ) -> "list[dict[str, Any]]":
        """All SLO verdicts for one template (no gauge export)."""
        if now is None:
            now = self._store.now()
        return [
            evaluate_slo(slo, self._store, template, now)
            for slo in self._slos
        ]

    def export(
        self, templates: "list[str]", now: "float | None" = None
    ) -> "dict[str, list[dict[str, Any]]]":
        """Evaluate every template and publish state/burn gauges."""
        if now is None:
            now = self._store.now()
        verdicts: "dict[str, list[dict[str, Any]]]" = {}
        for template in templates:
            rows = self.evaluate(template, now)
            verdicts[template] = rows
            for row in rows:
                self._registry.gauge(
                    names.SLO_STATE, template=template, slo=row["name"]
                ).set(SLO_STATES.index(row["state"]))
                self._registry.gauge(
                    names.SLO_BURN_RATE,
                    template=template,
                    slo=row["name"],
                    window="short",
                ).set(row["burn_short"])
                self._registry.gauge(
                    names.SLO_BURN_RATE,
                    template=template,
                    slo=row["name"],
                    window="long",
                ).set(row["burn_long"])
        return verdicts

    @staticmethod
    def worst_state(
        verdicts: "dict[str, list[dict[str, Any]]]",
    ) -> str:
        """The most severe state across all templates and SLOs."""
        worst = 0
        for rows in verdicts.values():
            for row in rows:
                worst = max(worst, SLO_STATES.index(row["state"]))
        return SLO_STATES[worst]
