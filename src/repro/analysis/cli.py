"""Command line of the invariant linter.

Exposed two ways — ``repro lint ...`` (subcommand of the main CLI) and
``python -m repro.analysis ...`` (no package install needed beyond
``PYTHONPATH=src``, which is what CI runs).

Exit status: 0 clean (baselined findings do not fail the run, stale
baseline entries do not either — they are reported for cleanup), 1 on
fresh findings, unreadable files, or a failed ``--selftest``, 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import lint_paths
from repro.analysis.report import (
    render_github,
    render_json,
    render_rules,
    render_text,
)
from repro.analysis.selftest import run_selftest
from repro.exceptions import ConfigurationError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant linter: determinism (RPR001), clock "
            "discipline (RPR002), metric-name registry (RPR003), "
            "exception hygiene (RPR004), atomic persistence (RPR005), "
            "float tolerance (RPR006), typed public API (RPR007), "
            "session-state ownership (RPR008), span discipline (RPR009); "
            "with --effects, the whole-program RPR1xx family: obs-layer "
            "purity (RPR101), predict-path determinism (RPR102), "
            "mutation-count discipline (RPR103), documented public "
            "exceptions (RPR104), lifecycle-event coverage (RPR105)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help=(
            "report format (json for machine consumption; github emits "
            "::error workflow commands for inline PR annotations)"
        ),
    )
    parser.add_argument(
        "--effects",
        action="store_true",
        help=(
            "also run the whole-program effect analysis "
            "(RPR101-RPR105): call-graph purity, determinism taint, "
            "mutation discipline, exception documentation, lifecycle-"
            "event coverage"
        ),
    )
    parser.add_argument(
        "--graph-out",
        metavar="PATH",
        help=(
            "with --effects: write the analyzed call graph artifact "
            "(Graphviz if PATH ends in .dot, JSON otherwise)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE}; missing = empty)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (report every finding as fresh)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run every rule against its known-bad/known-good fixtures",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every rule, its scope, and how to fix it",
    )
    return parser


def _run_selftest() -> int:
    failures = run_selftest()
    if failures:
        for failure in failures:
            print(f"selftest FAIL: {failure}", file=sys.stderr)
        return 1
    print("selftest OK: every rule fires on bad and stays quiet on good")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rules())
        return 0
    if args.selftest:
        return _run_selftest()
    if args.graph_out and not args.effects:
        print("error: --graph-out requires --effects", file=sys.stderr)
        return 2

    findings, errors = lint_paths(args.paths)
    if args.effects:
        # Imported lazily: the per-file path stays import-light and the
        # engine pulls in the project stub tables only when asked.
        from repro.analysis.effects import analyze_paths, write_graph

        effect_findings, project = analyze_paths(args.paths)
        findings = sorted(
            findings + effect_findings,
            key=lambda f: (f.path, f.line, f.col, f.rule),
        )
        errors.extend(project.errors)
        if args.graph_out:
            write_graph(project, args.graph_out)
    try:
        baseline = (
            [] if args.no_baseline else load_baseline(args.baseline)
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    fresh, accepted, stale = apply_baseline(findings, baseline)

    if args.write_baseline:
        count = write_baseline(findings, args.baseline)
        print(f"baseline written: {count} entr(y/ies) -> {args.baseline}")
        return 0

    renderer = {
        "json": render_json,
        "github": render_github,
        "text": render_text,
    }[args.format]
    print(renderer(fresh, accepted, stale, errors))
    return 1 if fresh or errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
