"""Normalization between plan-space coordinates and selectivities.

The paper decomposes the optimizer's plan choice as
``plan(f(q))`` where ``f`` maps template parameters to *normalized*
optimizer parameters on ``[0, 1]`` (Section II-A).  This module
implements that normalization: plan-space coordinate ``x_i`` maps to an
actual predicate selectivity inside the predicate's selectivity range,
on either a log or a linear scale.

Default ranges are derived from table cardinalities so that the
*filtered* cardinality of every table sweeps a comparable interval
(roughly tens of rows up to a few hundred thousand).  With TPC-H's
exponentially spread table sizes, sweeping raw selectivity over
``[0, 1]`` on every table would push all the interesting plan-choice
crossovers into thin slivers along the axes; normalizing the swept
range recovers the rich plan diagrams (Figure 2) the experiments rely
on, exactly as the workloads of plan-diagram studies do.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.optimizer.catalog import Catalog
from repro.optimizer.expressions import QueryTemplate

#: Smallest filtered cardinality the default range targets.
_MIN_TARGET_ROWS = 10.0
#: Largest filtered cardinality the default range targets.
_MAX_TARGET_ROWS = 300_000.0
#: Floor for the selectivity range lower bound.
_MIN_SELECTIVITY = 1e-5


def default_selectivity_range(row_count: int) -> tuple[float, float]:
    """Selectivity range sweeping comparable filtered cardinalities."""
    hi = min(1.0, _MAX_TARGET_ROWS / row_count)
    lo = max(_MIN_SELECTIVITY, min(_MIN_TARGET_ROWS / row_count, hi / 10.0))
    return lo, hi


class ParameterMapping:
    """Bidirectional map between ``[0, 1]^r`` and selectivity vectors."""

    def __init__(
        self,
        ranges: list[tuple[float, float]],
        scales: list[str],
    ) -> None:
        if len(ranges) != len(scales):
            raise ConfigurationError("ranges and scales must align")
        for (lo, hi), scale in zip(ranges, scales, strict=True):
            if not 0.0 < lo <= hi <= 1.0:
                raise ConfigurationError(
                    f"selectivity range ({lo}, {hi}) must satisfy 0 < lo <= hi <= 1"
                )
            if scale not in ("log", "linear"):
                raise ConfigurationError(f"unknown scale {scale!r}")
        self.ranges = list(ranges)
        self.scales = list(scales)
        self._lo = np.array([r[0] for r in ranges])
        self._hi = np.array([r[1] for r in ranges])
        self._log = np.array([s == "log" for s in scales])

    @classmethod
    def for_template(
        cls, template: QueryTemplate, catalog: Catalog
    ) -> "ParameterMapping":
        """Default mapping: per-predicate log-scaled cardinality ranges."""
        ranges = []
        scales = []
        for predicate in sorted(template.predicates, key=lambda p: p.param_index):
            table = catalog.table(predicate.column.table)
            if predicate.sel_range is not None:
                ranges.append(predicate.sel_range)
            else:
                ranges.append(default_selectivity_range(table.row_count))
            scales.append(predicate.scale)
        return cls(ranges, scales)

    @property
    def dimensions(self) -> int:
        return len(self.ranges)

    def to_selectivity(self, x: np.ndarray) -> np.ndarray:
        """Normalized points ``(n, r)`` to actual selectivities ``(n, r)``."""
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.dimensions:
            raise ConfigurationError(
                f"expected {self.dimensions}-dimensional points"
            )
        log_sel = np.exp(
            np.log(self._lo) + x * (np.log(self._hi) - np.log(self._lo))
        )
        linear_sel = self._lo + x * (self._hi - self._lo)
        return np.where(self._log, log_sel, linear_sel)

    def to_normalized(self, selectivity: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`to_selectivity` (clipped to ``[0, 1]``)."""
        selectivity = np.asarray(selectivity, dtype=float)
        if selectivity.ndim == 1:
            selectivity = selectivity[None, :]
        clipped = np.clip(selectivity, self._lo, self._hi)
        log_x = (np.log(clipped) - np.log(self._lo)) / (
            np.log(self._hi) - np.log(self._lo) + 1e-300
        )
        linear_x = (clipped - self._lo) / (self._hi - self._lo + 1e-300)
        return np.clip(np.where(self._log, log_x, linear_x), 0.0, 1.0)
