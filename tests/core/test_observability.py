"""Observability integration: session/cache/governor metric emission,
plus the per-template seed-independence fix in :class:`PPCFramework`."""

import numpy as np

from repro.config import PPCConfig
from repro.core.framework import PPCFramework, TemplateSession
from repro.obs import MetricsRegistry, names as metric_names
from repro.workload import RandomTrajectoryWorkload


def _run_session(tiny_space, config=None, n=60, metrics=None, seed=0):
    session = TemplateSession(
        tiny_space,
        config
        or PPCConfig(
            confidence_threshold=0.6,
            mean_invocation_probability=0.05,
            drift_response=False,
        ),
        seed=seed,
        metrics=metrics,
    )
    workload = RandomTrajectoryWorkload(
        tiny_space.dimensions, spread=0.05, seed=11
    ).generate(n)
    for point in workload:
        session.execute(point)
    return session


class TestSessionMetrics:
    def test_execution_counter_and_stage_timers(self, tiny_space):
        session = _run_session(tiny_space, n=60)
        registry = session.metrics
        assert (
            registry.counter_value(
                metric_names.EXECUTIONS_TOTAL, template="tiny"
            )
            == 60
        )
        # Every instance runs the predict stage exactly once.
        predict = registry.histogram_summary(
            metric_names.STAGE_SECONDS, template="tiny", stage="predict"
        )
        assert predict["count"] == 60
        assert predict["sum"] > 0.0
        assert predict["p95"] >= predict["p50"] >= 0.0
        # Trusted executions run execute+feedback; invocations run
        # optimize (pre-execution ones) — together they tile the run.
        optimize = registry.histogram_summary(
            metric_names.STAGE_SECONDS, template="tiny", stage="optimize"
        )
        execute = registry.histogram_summary(
            metric_names.STAGE_SECONDS, template="tiny", stage="execute"
        )
        feedback = registry.histogram_summary(
            metric_names.STAGE_SECONDS, template="tiny", stage="feedback"
        )
        trusted = sum(1 for r in session.records if not r.optimizer_invoked)
        negative = sum(
            1
            for r in session.records
            if r.invocation_reason == "negative_feedback"
        )
        assert execute["count"] == trusted + negative
        assert feedback["count"] == trusted + negative
        # Negative-feedback invocations are timed inside the feedback
        # stage, so "optimize" holds only the pre-execution ones.
        assert optimize["count"] == session.optimizer_invocations - negative

    def test_invocation_reason_counters_sum_to_invocations(self, tiny_space):
        session = _run_session(tiny_space, n=80)
        registry = session.metrics
        by_reason = {
            labels["reason"]: value
            for labels, value in registry.counter_series(
                metric_names.INVOCATIONS_TOTAL
            )
        }
        assert sum(by_reason.values()) == session.optimizer_invocations
        # The cold start always begins with a NULL prediction.
        assert by_reason.get("null_prediction", 0) >= 1
        # Counters agree with the per-record reasons.
        for reason in metric_names.INVOCATION_REASONS:
            expected = sum(
                1
                for r in session.records
                if r.invocation_reason == reason
            )
            assert by_reason.get(reason, 0) == expected

    def test_cache_event_counters_match_cache_stats(self, tiny_space):
        session = _run_session(tiny_space, n=80)
        registry = session.metrics
        cache = session.cache
        events = {
            labels["event"]: value
            for labels, value in registry.counter_series(
                metric_names.CACHE_EVENTS_TOTAL
            )
        }
        assert events.get("hit", 0) == cache.hits
        assert events.get("miss", 0) == cache.misses
        assert events.get("eviction", 0) == cache.evictions
        assert cache.hits > 0

    def test_predictor_timers_fire_once_per_predict(self, tiny_space):
        session = _run_session(tiny_space, n=40)
        registry = session.metrics
        transform = registry.histogram_summary(
            metric_names.PREDICT_TRANSFORM_SECONDS, template="tiny"
        )
        ranges = registry.histogram_summary(
            metric_names.PREDICT_RANGE_QUERY_SECONDS, template="tiny"
        )
        assert transform["count"] == 40
        assert ranges["count"] == 40

    def test_positive_feedback_outcomes_counted(self, tiny_space):
        config = PPCConfig(
            confidence_threshold=0.6,
            mean_invocation_probability=0.05,
            drift_response=False,
            positive_feedback=True,
            positive_feedback_min_confidence=0.6,
        )
        session = _run_session(tiny_space, config=config, n=80)
        registry = session.metrics
        outcomes = {
            labels["outcome"]: value
            for labels, value in registry.counter_series(
                metric_names.POSITIVE_FEEDBACK_TOTAL
            )
        }
        trusted = sum(1 for r in session.records if not r.optimizer_invoked)
        # Every trusted execution (no optimizer, no negative feedback)
        # produces exactly one accept/reject decision.
        assert trusted > 0
        assert sum(outcomes.values()) == trusted

    def test_drift_counter_tracks_drift_events(self, tiny_space):
        config = PPCConfig(
            confidence_threshold=0.3,
            mean_invocation_probability=0.0,
            negative_feedback=True,
            drift_response=True,
            drift_threshold=0.99,
            drift_min_observations=5,
            monitor_window=10,
        )
        session = TemplateSession(tiny_space, config, seed=0)
        x = np.array([0.5, 0.5])
        true_plan = int(tiny_space.plan_at(x[None, :])[0])
        wrong_plan = (true_plan + 1) % tiny_space.plan_count
        for __ in range(12):
            session.online.observe(x, wrong_plan, cost=1.0)
        for __ in range(30):
            if session.execute(x).drift_triggered:
                break
        assert session.drift_events >= 1
        assert (
            session.metrics.counter_value(
                metric_names.DRIFT_EVENTS_TOTAL, template="tiny"
            )
            == session.drift_events
        )

    def test_sessions_share_framework_registry(self, tiny_space, q1_space):
        framework = PPCFramework(PPCConfig(drift_response=False), seed=0)
        framework.register(tiny_space)
        framework.register(q1_space)
        framework.execute("tiny", np.array([0.5, 0.5]))
        framework.execute("Q1", np.array([0.5, 0.5]))
        registry = framework.metrics
        assert framework.session("tiny").metrics is registry
        assert framework.session("Q1").metrics is registry
        for template in ("tiny", "Q1"):
            assert (
                registry.counter_value(
                    metric_names.EXECUTIONS_TOTAL, template=template
                )
                == 1
            )


class TestGovernorMetrics:
    def test_reclamation_counters(self, q1_space, q5_space):
        framework = PPCFramework(
            PPCConfig(drift_response=False),
            seed=0,
            memory_budget_bytes=500,
            governor_interval=8,
        )
        framework.register(q1_space)
        framework.register(q5_space)
        q1_workload = RandomTrajectoryWorkload(
            q1_space.dimensions, spread=0.05, seed=1
        ).generate(120)
        q5_workload = RandomTrajectoryWorkload(
            q5_space.dimensions, spread=0.05, seed=2
        ).generate(120)
        for a, b in zip(q1_workload, q5_workload, strict=True):
            framework.execute("Q1", a)
            framework.execute("Q5", b)
        governor = framework.governor
        assert governor.shrinks + governor.drops > 0
        assert governor.reclaimed_bytes > 0
        registry = framework.metrics
        assert (
            registry.counter_value(metric_names.GOVERNOR_RECLAIMED_BYTES)
            == governor.reclaimed_bytes
        )
        actions = sum(
            value
            for __, value in registry.counter_series(
                metric_names.GOVERNOR_ACTIONS_TOTAL
            )
        )
        assert actions == governor.shrinks + governor.drops


class TestPerTemplateSeeding:
    """Satellite fix: registered sessions must not share RNG streams."""

    def test_templates_get_distinct_transform_ensembles(
        self, tiny_space, q1_space
    ):
        # Both spaces are two-dimensional, so identical streams would
        # produce identical LSH directions — the pre-fix bug.
        assert tiny_space.dimensions == q1_space.dimensions == 2
        framework = PPCFramework(PPCConfig(drift_response=False), seed=7)
        a = framework.register(tiny_space)
        b = framework.register(q1_space)
        dirs_a = a.online.predictor.ensemble.transforms[0].directions
        dirs_b = b.online.predictor.ensemble.transforms[0].directions
        assert not np.allclose(dirs_a, dirs_b)

    def test_multi_template_run_reproducible_from_one_seed(
        self, tiny_space, q1_space
    ):
        def directions(seed):
            framework = PPCFramework(
                PPCConfig(drift_response=False), seed=seed
            )
            a = framework.register(tiny_space)
            b = framework.register(q1_space)
            return (
                a.online.predictor.ensemble.transforms[0].directions,
                b.online.predictor.ensemble.transforms[0].directions,
            )

        first = directions(7)
        second = directions(7)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])
        third = directions(8)
        assert not np.allclose(first[0], third[0])

    def test_generator_seed_still_supported(self, tiny_space, q1_space):
        framework = PPCFramework(
            PPCConfig(drift_response=False),
            seed=np.random.default_rng(3),
        )
        a = framework.register(tiny_space)
        b = framework.register(q1_space)
        dirs_a = a.online.predictor.ensemble.transforms[0].directions
        dirs_b = b.online.predictor.ensemble.transforms[0].directions
        assert not np.allclose(dirs_a, dirs_b)


class TestSnapshotShape:
    def test_session_snapshot_round_trips(self, tiny_space):
        registry = MetricsRegistry()
        _run_session(tiny_space, n=20, metrics=registry)
        snapshot = registry.snapshot()
        assert metric_names.EXECUTIONS_TOTAL in snapshot["counters"]
        assert metric_names.STAGE_SECONDS in snapshot["histograms"]
        stages = {
            sample["labels"]["stage"]
            for sample in snapshot["histograms"][metric_names.STAGE_SECONDS]
        }
        assert "predict" in stages
