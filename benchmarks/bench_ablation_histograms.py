"""Ablation: histogram construction for the z-order synopses.

Compares V-Optimal (exact variance-optimal boundaries), MaxDiff
(boundaries at the largest gaps — the paper's "standard construction
that minimizes estimation error"), equi-depth, equi-width and the
streaming incremental histogram, all at b_h = 40.
Expected shape: boundary-adaptive constructions (maxdiff / equidepth /
incremental) beat the oblivious equi-width buckets.
"""

from _bench_utils import write_result
from repro.core.histogram_predictor import HistogramPredictor
from repro.experiments.setup import evaluate_offline, offline_truth
from repro.tpch import plan_space_for
from repro.workload import sample_labeled_pool


def test_ablation_histogram_kinds(benchmark):
    def run():
        space = plan_space_for("Q1")
        pool = sample_labeled_pool(space, 3200, seed=7)
        test, truth = offline_truth(space, 800, seed=11)
        rows = []
        for kind in ("voptimal", "maxdiff", "equidepth", "equiwidth", "incremental"):
            predictor = HistogramPredictor(
                pool, transforms=5, max_buckets=40, radius=0.05,
                confidence_threshold=0.7, histogram_kind=kind, seed=1,
            )
            rows.append(
                (kind, evaluate_offline(predictor, test, truth),
                 predictor.space_bytes())
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation — histogram construction for the z-order synopses",
        "(Q1, |X| = 3200, b_h = 40, t = 5, gamma = 0.7, d = 0.05)",
        "",
        f"{'kind':>12s} {'precision':>10s} {'recall':>8s} {'bytes':>10s}",
    ]
    table = {}
    for kind, metrics, space_bytes in rows:
        table[kind] = metrics
        lines.append(
            f"{kind:>12s} {metrics.precision:10.3f} {metrics.recall:8.3f} "
            f"{space_bytes:10,d}"
        )
    write_result("ablation_histograms", lines)

    # Boundary-adaptive constructions should not lose on recall to the
    # oblivious equi-width buckets while staying precise.
    assert table["maxdiff"].precision > 0.9
    assert table["incremental"].precision > 0.9
    assert table["maxdiff"].recall >= table["equiwidth"].recall - 0.05
