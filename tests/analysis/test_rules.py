"""Every RPR rule against its committed good/bad fixture pair."""

import pathlib

import pytest

from repro.analysis import all_rules, lint_source

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: rule -> (module the fixtures are linted under, findings the bad
#: fixture must produce).  The module drives rule scoping, so e.g. the
#: RPR006 pair is linted as if it lived in ``repro.clustering``.
CASES = {
    "RPR001": ("repro.workload.scratch", 5),
    # 4 = the from-import itself plus the three call sites.
    "RPR002": ("repro.core.scratch", 4),
    "RPR003": ("repro.core.scratch", 2),
    "RPR004": ("repro.core.scratch", 2),
    "RPR005": ("repro.core.scratch", 3),
    "RPR006": ("repro.clustering.scratch", 2),
    "RPR007": ("repro.core.scratch", 3),
    "RPR008": ("repro.experiments.scratch", 3),
    # 3 = open_span + Span(...) construction + close_span.
    "RPR009": ("repro.core.scratch", 3),
}


def _lint_fixture(rule: str, flavor: str):
    module, _ = CASES[rule]
    source = (FIXTURES / f"{rule.lower()}_{flavor}.py").read_text()
    findings = lint_source(source, module=module)
    return [finding for finding in findings if finding.rule == rule]


class TestRuleFixtures:
    def test_every_registered_rule_has_a_case(self):
        assert {rule.code for rule in all_rules()} == set(CASES)

    @pytest.mark.parametrize("rule", sorted(CASES))
    def test_bad_fixture_fires(self, rule):
        findings = _lint_fixture(rule, "bad")
        assert len(findings) == CASES[rule][1]
        assert all(finding.severity == "error" for finding in findings)

    @pytest.mark.parametrize("rule", sorted(CASES))
    def test_good_fixture_is_clean(self, rule):
        assert _lint_fixture(rule, "good") == []


class TestRuleScoping:
    def test_scoped_rule_ignores_out_of_scope_modules(self):
        source = (FIXTURES / "rpr006_bad.py").read_text()
        findings = lint_source(source, module="repro.workload.scratch")
        assert [f for f in findings if f.rule == "RPR006"] == []

    def test_exempt_module_is_skipped(self):
        source = (FIXTURES / "rpr002_bad.py").read_text()
        findings = lint_source(source, module="repro.resilience.scratch")
        assert [f for f in findings if f.rule == "RPR002"] == []

    def test_annotation_rule_only_guards_public_surface(self):
        source = (FIXTURES / "rpr007_bad.py").read_text()
        findings = lint_source(source, module="repro.histograms.scratch")
        assert [f for f in findings if f.rule == "RPR007"] == []
