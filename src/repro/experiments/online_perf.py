"""Figures 11 and 12: online performance over random trajectories.

* :func:`run_online_performance` — ONLINE-APPROXIMATE-LSH-HISTOGRAMS
  over trajectory workloads at ``r_d`` in {0.01, 0.02, 0.04, 0.08},
  with noise elimination and 5 % random invocations (Figure 11):
  reports overall ground-truth precision/recall plus the learning
  curve (windowed recall over time).
* :func:`run_feedback_ablation` — the same workload executed by
  variants with noise elimination and/or negative feedback disabled
  (Figure 12): precision over time degrades without noise elimination
  and improves with feedback.
* :func:`run_invocation_sweep` — precision as the mean optimizer
  invocation probability grows (the paper observes roughly +0.02 per
  +10 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.config import PPCConfig
from repro.geometry import equivalent_radius
from repro.core.framework import TemplateSession
from repro.experiments.setup import (
    ONLINE_GAMMA,
    ONLINE_INVOCATION_PROBABILITY,
    TRAJECTORY_SPREADS,
)
from repro.metrics.classification import PredictionOutcome, summarize
from repro.tpch import plan_space_for
from repro.workload import RandomTrajectoryWorkload


@dataclass
class OnlineRun:
    """Result of one online workload replay."""

    template: str
    spread: float
    variant: str
    precision: float
    recall: float
    optimizer_invocations: int
    #: Windowed (precision, recall) curve over the workload.
    curve: list[tuple[float, float]] = field(default_factory=list)


def _windowed_curve(records, window: int = 100) -> list[tuple[float, float]]:
    """Ground-truth precision/recall in consecutive windows."""
    curve = []
    for start in range(0, len(records), window):
        chunk = records[start : start + window]
        metrics = summarize(
            PredictionOutcome(r.predicted, r.optimal_plan) for r in chunk
        )
        curve.append((metrics.precision, metrics.recall))
    return curve


def _run_session(
    template: str,
    spread: float,
    config: PPCConfig,
    variant: str,
    workload_size: int,
    seed: int,
) -> OnlineRun:
    plan_space = plan_space_for(template)
    if plan_space.dimensions > 2:
        # Scale the query radius to enclose the same sample mass the
        # configured 2-D radius would (see repro.geometry).
        config = replace(
            config,
            radius=equivalent_radius(config.radius, plan_space.dimensions),
        )
    workload = RandomTrajectoryWorkload(
        plan_space.dimensions, spread=spread, seed=seed
    ).generate(workload_size)
    session = TemplateSession(plan_space, config, seed=seed + 1)
    for point in workload:
        session.execute(point)
    metrics = session.ground_truth_metrics()
    return OnlineRun(
        template=template,
        spread=spread,
        variant=variant,
        precision=metrics.precision,
        recall=metrics.recall,
        optimizer_invocations=session.optimizer_invocations,
        curve=_windowed_curve(session.records),
    )


def reference_config(
    radius: float = 0.1,
    noise_elimination: bool = True,
    negative_feedback: bool = True,
    invocation_probability: float = ONLINE_INVOCATION_PROBABILITY,
) -> PPCConfig:
    """The Section V-B configuration: b_h = 40, t = 5, gamma = 0.8."""
    return PPCConfig(
        transforms=5,
        max_buckets=40,
        radius=radius,
        confidence_threshold=ONLINE_GAMMA,
        noise_fraction=0.002 if noise_elimination else None,
        mean_invocation_probability=invocation_probability,
        negative_feedback=negative_feedback,
        drift_response=False,
    )


def run_online_performance(
    templates: tuple[str, ...] = ("Q1", "Q8"),
    spreads: tuple[float, ...] = TRAJECTORY_SPREADS,
    radii: tuple[float, ...] = (0.05, 0.1, 0.15, 0.2),
    workload_size: int = 1000,
    seed: int = 7,
) -> list[OnlineRun]:
    """Figure 11: per-template, per-spread results averaged over radii."""
    runs = []
    for template in templates:
        for spread in spreads:
            cells = [
                _run_session(
                    template,
                    spread,
                    reference_config(radius=radius),
                    "reference",
                    workload_size,
                    seed,
                )
                for radius in radii
            ]
            merged = OnlineRun(
                template=template,
                spread=spread,
                variant="reference",
                precision=float(np.mean([c.precision for c in cells])),
                recall=float(np.mean([c.recall for c in cells])),
                optimizer_invocations=int(
                    np.mean([c.optimizer_invocations for c in cells])
                ),
                curve=cells[1].curve,  # the d = 0.1 learning curve
            )
            runs.append(merged)
    return runs


def run_feedback_ablation(
    template: str = "Q1",
    spread: float = 0.02,
    workload_size: int = 1000,
    repeats: int = 5,
    seed: int = 7,
) -> list[OnlineRun]:
    """Figure 12: noise elimination and negative feedback ablations.

    Every variant replays the *same* ``repeats`` workloads (the paper
    uses 25); precision/recall are averaged and a representative curve
    retained.
    """
    variants = {
        "full": reference_config(),
        "no-noise-elimination": reference_config(noise_elimination=False),
        "no-negative-feedback": reference_config(negative_feedback=False),
        "neither": reference_config(
            noise_elimination=False, negative_feedback=False
        ),
    }
    runs = []
    for name, config in variants.items():
        cells = [
            _run_session(
                template, spread, config, name, workload_size, seed + i
            )
            for i in range(repeats)
        ]
        runs.append(
            OnlineRun(
                template=template,
                spread=spread,
                variant=name,
                precision=float(np.mean([c.precision for c in cells])),
                recall=float(np.mean([c.recall for c in cells])),
                optimizer_invocations=int(
                    np.mean([c.optimizer_invocations for c in cells])
                ),
                curve=cells[0].curve,
            )
        )
    return runs


def run_noise_sweep(
    template: str = "Q1",
    fractions: "tuple[float | None, ...]" = (None, 0.001, 0.002, 0.005, 0.02),
    spread: float = 0.02,
    workload_size: int = 1000,
    repeats: int = 3,
    seed: int = 7,
) -> list[OnlineRun]:
    """Noise-elimination threshold sweep.

    The paper fixes "a constant factor of the total number of plan
    space points" without giving the value; this sweep maps the dial:
    no threshold risks gradual precision decay from z-order false
    positives, an overly aggressive one suppresses legitimate
    predictions (recall collapses).
    """
    runs = []
    for fraction in fractions:
        config = replace(reference_config(), noise_fraction=fraction)
        label = "off" if fraction is None else f"nu={fraction}"
        cells = [
            _run_session(
                template, spread, config, label, workload_size, seed + i
            )
            for i in range(repeats)
        ]
        runs.append(
            OnlineRun(
                template=template,
                spread=spread,
                variant=label,
                precision=float(np.mean([c.precision for c in cells])),
                recall=float(np.mean([c.recall for c in cells])),
                optimizer_invocations=int(
                    np.mean([c.optimizer_invocations for c in cells])
                ),
            )
        )
    return runs


def run_invocation_sweep(
    template: str = "Q1",
    probabilities: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3),
    spread: float = 0.02,
    workload_size: int = 1000,
    repeats: int = 3,
    seed: int = 7,
) -> list[OnlineRun]:
    """Random-invocation sweep: precision vs mean invocation probability."""
    runs = []
    for probability in probabilities:
        config = reference_config(invocation_probability=probability)
        cells = [
            _run_session(
                template,
                spread,
                config,
                f"p={probability}",
                workload_size,
                seed + i,
            )
            for i in range(repeats)
        ]
        runs.append(
            OnlineRun(
                template=template,
                spread=spread,
                variant=f"p={probability}",
                precision=float(np.mean([c.precision for c in cells])),
                recall=float(np.mean([c.recall for c in cells])),
                optimizer_invocations=int(
                    np.mean([c.optimizer_invocations for c in cells])
                ),
            )
        )
    return runs
