"""A day in the life of an adaptive plan cache.

Simulates a multi-template workload whose character changes midway:
three templates run trajectory workloads concurrently, and halfway
through, Q1's plan space is artificially scrambled (a stand-in for a
bulk load or a statistics refresh flipping the optimizer's choices).
The framework's estimators notice, the drift response drops Q1's
histograms, and the session relearns the new space — while Q0 and Q8
sail on unaffected.

Run:  python examples/adaptive_caching.py
"""

import numpy as np

from repro import PPCConfig, PPCFramework, plan_space_for
from repro.workload import ManipulatedPlanSpace, RandomTrajectoryWorkload


def window_stats(records, start, stop):
    chunk = records[start:stop]
    if not chunk:
        return 0.0, 0.0
    answered = [r for r in chunk if r.predicted is not None]
    correct = sum(1 for r in answered if r.correct)
    precision = correct / len(answered) if answered else 1.0
    recall = correct / len(chunk)
    return precision, recall


def main() -> None:
    config = PPCConfig(
        confidence_threshold=0.8,
        drift_response=True,
        drift_threshold=0.6,
    )
    framework = PPCFramework(config, seed=0)

    oracles = {}
    workloads = {}
    total = 2000
    for name in ("Q0", "Q1", "Q8"):
        base = plan_space_for(name)
        # The manipulable wrapper quacks like a PlanSpace, so it can
        # stand in as both the black-box optimizer and ground truth.
        oracle = ManipulatedPlanSpace(base, seed=3)
        oracles[name] = oracle
        framework.register(oracle)
        workloads[name] = RandomTrajectoryWorkload(
            base.dimensions, spread=0.02, seed=11
        ).generate(total)

    switch = total // 2
    rng = np.random.default_rng(5)
    for i in range(total):
        if i == switch:
            print(f"--- instance {i}: scrambling Q1's plan space ---")
            oracles["Q1"].activate()
        # Interleave the three templates randomly.
        name = ("Q0", "Q1", "Q8")[rng.integers(3)]
        point = workloads[name][i]
        framework.execute(name, point)

    print()
    print(f"{'template':>8s} {'phase':>12s} {'precision':>10s} "
          f"{'recall':>8s} {'drift events':>13s}")
    for name in ("Q0", "Q1", "Q8"):
        session = framework.session(name)
        records = session.records
        half = len(records) // 2
        for phase, (lo, hi) in (
            ("before", (0, half)),
            ("after", (half, len(records))),
        ):
            precision, recall = window_stats(records, lo, hi)
            print(f"{name:>8s} {phase:>12s} {precision:10.3f} "
                  f"{recall:8.3f} {session.drift_events:13d}")

    q1 = framework.session("Q1")
    print(f"\nQ1 raised {q1.drift_events} drift event(s): the stale "
          f"histograms were dropped and {q1.online.sample_count} fresh "
          "points were accumulated against the new plan space.  (The "
          "scrambled space deliberately violates the predictability "
          "assumptions, so precision stays low after the switch — the "
          "detector's job is to notice that and stop trusting the cache.)")


if __name__ == "__main__":
    main()
