"""The batch execution path is lockstep-identical to sequential calls.

``TemplateSession.execute_batch`` prefetches predictions through the
vectorized ``predict_batch`` primitive and invalidates the prefetched
tail whenever a synopsis mutation lands mid-batch, so two identically
seeded sessions — one executing per instance, one in batches — must
produce bit-identical decision streams.  That guarantee is what lets
the runtime simulation and the service facade route through the batch
hot path without changing any reproduced number.
"""

import numpy as np
import pytest

from repro.config import PPCConfig
from repro.core.framework import PPCFramework, TemplateSession
from repro.exceptions import PredictionError, WorkloadError
from repro.workload import QueryInstance, RandomTrajectoryWorkload


def _config(**overrides) -> PPCConfig:
    kwargs = dict(
        confidence_threshold=0.7,
        mean_invocation_probability=0.05,
        drift_response=False,
    )
    kwargs.update(overrides)
    return PPCConfig(**kwargs)


def _record_key(record):
    return (
        record.predicted,
        record.confidence,
        record.optimizer_invoked,
        record.invocation_reason,
        record.executed_plan,
        record.execution_cost,
        record.optimal_plan,
        record.degraded,
        record.fallback_source,
    )


def _workload(n=200, seed=4):
    return RandomTrajectoryWorkload(2, spread=0.05, seed=seed).generate(n)


class TestSessionExecuteBatch:
    @pytest.mark.parametrize("chunk", [1, 7, 32, 200])
    def test_lockstep_with_sequential_execute(self, tiny_space, chunk):
        sequential = TemplateSession(tiny_space, _config(), seed=11)
        batched = TemplateSession(tiny_space, _config(), seed=11)
        workload = _workload()
        expected = [sequential.execute(x) for x in workload]
        got = []
        for start in range(0, workload.shape[0], chunk):
            got.extend(
                batched.execute_batch(workload[start : start + chunk])
            )
        assert len(got) == len(expected)
        for a, b in zip(expected, got, strict=True):
            assert _record_key(a) == _record_key(b)
        assert (
            sequential.optimizer_invocations
            == batched.optimizer_invocations
        )

    def test_cold_start_mutations_invalidate_the_tail(self, tiny_space):
        """From an empty cache every early instance inserts, so the
        whole warm-up phase runs through tail re-prefetches — and must
        still match sequential execution exactly."""
        sequential = TemplateSession(tiny_space, _config(), seed=3)
        batched = TemplateSession(tiny_space, _config(), seed=3)
        workload = _workload(n=60, seed=9)
        expected = [_record_key(sequential.execute(x)) for x in workload]
        got = [_record_key(r) for r in batched.execute_batch(workload)]
        assert got == expected
        assert batched.online.mutation_count > 0

    def test_traced_instances_keep_parity(self, q1_space):
        """Sampled traces re-predict through the scalar traced path;
        decisions must not move."""
        sequential = TemplateSession(q1_space, _config(), seed=5)
        batched = TemplateSession(q1_space, _config(), seed=5)
        workload = _workload(n=120, seed=6)
        expected = [_record_key(sequential.execute(x)) for x in workload]
        got = [_record_key(r) for r in batched.execute_batch(workload)]
        assert got == expected
        assert len(batched.tracer.traces()) == len(
            sequential.tracer.traces()
        )

    def test_predict_timer_observes_once_per_instance(self, q1_space):
        from repro.obs import names as metric_names

        session = TemplateSession(q1_space, _config(), seed=7)
        session.execute_batch(_workload(n=40, seed=8))
        digest = session.metrics.histogram_summary(
            metric_names.STAGE_SECONDS, template="Q1", stage="predict"
        )
        assert digest["count"] == 40

    def test_empty_batch(self, tiny_space):
        session = TemplateSession(tiny_space, _config(), seed=1)
        assert session.execute_batch(np.empty((0, 2))) == []

    def test_one_dimensional_input_rejected(self, tiny_space):
        session = TemplateSession(tiny_space, _config(), seed=1)
        with pytest.raises(PredictionError):
            session.execute_batch(np.array([0.5, 0.5]))


class TestFrameworkExecuteBatch:
    def test_lockstep_with_sequential_execute(self, q1_space):
        sequential = PPCFramework(_config(), seed=0)
        batched = PPCFramework(_config(), seed=0)
        sequential.register(q1_space)
        batched.register(q1_space)
        workload = _workload(n=150, seed=12)
        expected = [
            _record_key(sequential.execute("Q1", x)) for x in workload
        ]
        got = [
            _record_key(r)
            for r in batched.execute_batch("Q1", workload)
        ]
        assert got == expected
        assert (
            sequential.optimizer_invocations
            == batched.optimizer_invocations
        )

    def test_governed_framework_falls_back_to_sequential(self, q1_space):
        """Governor reclamation must interleave at its exact cadence
        (and its shrinks bypass the mutation counter), so a governed
        batch takes the sequential path — and still matches."""
        sequential = PPCFramework(
            _config(), memory_budget_bytes=200_000, seed=0
        )
        batched = PPCFramework(
            _config(), memory_budget_bytes=200_000, seed=0
        )
        sequential.register(q1_space)
        batched.register(q1_space)
        assert batched.governor is not None
        workload = _workload(n=100, seed=13)
        expected = [
            _record_key(sequential.execute("Q1", x)) for x in workload
        ]
        got = [
            _record_key(r)
            for r in batched.execute_batch("Q1", workload)
        ]
        assert got == expected


class TestServiceExecuteBatch:
    def _service(self):
        from repro.service import PlanCachingService

        service = PlanCachingService.tpch(
            scale_factor=0.1, config=_config(), seed=0
        )
        service.register("Q1")
        service.register("Q5")
        return service

    def test_groups_consecutive_templates(self):
        sequential = self._service()
        batched = self._service()
        q1_points = _workload(n=30, seed=14)
        q5_points = RandomTrajectoryWorkload(
            4, spread=0.05, seed=14
        ).generate(30)
        instances = []
        for i in range(30):
            if (i // 10) % 2 == 0:
                instances.append(
                    sequential.instance_at("Q1", q1_points[i])
                )
            else:
                instances.append(
                    sequential.instance_at("Q5", q5_points[i])
                )
        expected = [
            _record_key(sequential.execute(inst)) for inst in instances
        ]
        got = [
            _record_key(r) for r in batched.execute_batch(instances)
        ]
        assert got == expected

    def test_unknown_template_rejected(self):
        service = self._service()
        with pytest.raises(WorkloadError):
            service.execute_batch(
                [QueryInstance("Q3", (1.0, 2.0, 3.0))]
            )

    def test_empty_instance_list(self):
        assert self._service().execute_batch([]) == []


class TestSimulatorBatchReplay:
    def test_batched_ppc_regime_matches_sequential(self, q1_space):
        from repro.simulation.runtime import RuntimeSimulator

        workload = _workload(n=120, seed=15)
        plain = RuntimeSimulator(q1_space, _config(), seed=0).run(workload)
        chunked = RuntimeSimulator(q1_space, _config(), seed=0).run(
            workload, batch_size=16
        )
        a, b = plain["PPC"], chunked["PPC"]
        assert a.optimizer_invocations == b.optimizer_invocations
        assert a.optimization_ms == b.optimization_ms
        assert a.execution_ms == b.execution_ms
        assert a.overhead_ms == b.overhead_ms
        assert a.cumulative_ms == b.cumulative_ms

    def test_batch_size_validated(self, q1_space):
        from repro.simulation.runtime import RuntimeSimulator

        with pytest.raises(ValueError):
            RuntimeSimulator(q1_space, _config(), seed=0).run(
                _workload(n=5), batch_size=0
            )
