"""Crash-safe persistence: round-trips under damage, strict and not."""

import json
import os

import pytest

from repro.core.persistence import (
    DEFAULT_BACKUPS,
    STATE_VERSION,
    atomic_write_text,
    backup_path,
    dumps_predictor,
    load_predictor,
    loads_predictor,
    predictor_to_state,
    save_predictor,
)
from repro.exceptions import PersistenceError
from repro.resilience import bit_flip, torn_copy
from tests.resilience.helpers import cold_predictor, small_predictor


@pytest.fixture()
def predictor():
    return small_predictor()


@pytest.fixture()
def saved(predictor, tmp_path):
    return save_predictor(predictor, tmp_path / "state.json")


class TestAtomicWrite:
    def test_no_temp_file_left_behind(self, predictor, tmp_path):
        path = save_predictor(predictor, tmp_path / "state.json")
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_rewrite_rotates_previous_generation(self, predictor, tmp_path):
        path = save_predictor(predictor, tmp_path / "state.json")
        first = path.read_text()
        predictor.insert([0.5, 0.5], 0, cost=1.0)
        save_predictor(predictor, path)
        assert backup_path(path, 1).read_text() == first
        assert path.read_text() != first

    def test_backup_chain_rotates_oldest_out(self, predictor, tmp_path):
        path = tmp_path / "state.json"
        contents = []
        for round_index in range(4):
            predictor.insert([0.5, 0.5], 0, cost=float(round_index))
            save_predictor(predictor, path, backups=2)
            contents.append(path.read_text())
        # Newest backup is generation 1, older is generation 2; the
        # first write's content has been rotated out entirely.
        assert backup_path(path, 1).read_text() == contents[2]
        assert backup_path(path, 2).read_text() == contents[1]
        assert not backup_path(path, 3).exists()

    def test_backups_zero_keeps_no_chain(self, predictor, tmp_path):
        path = tmp_path / "state.json"
        save_predictor(predictor, path, backups=0)
        save_predictor(predictor, path, backups=0)
        assert not backup_path(path, 1).exists()

    def test_negative_backups_rejected(self, predictor, tmp_path):
        with pytest.raises(PersistenceError):
            save_predictor(predictor, tmp_path / "s.json", backups=-1)

    def test_atomic_write_text_replaces_not_appends(self, tmp_path):
        path = tmp_path / "doc.txt"
        atomic_write_text(path, "long initial contents")
        atomic_write_text(path, "short")
        assert path.read_text() == "short"


class TestDocumentFormat:
    def test_envelope_carries_version_and_checksum(self, predictor):
        document = json.loads(dumps_predictor(predictor))
        assert document["format"] == "repro-predictor"
        assert document["version"] == STATE_VERSION == 2
        assert isinstance(document["crc32"], int)

    def test_loads_round_trip(self, predictor):
        restored = loads_predictor(dumps_predictor(predictor))
        assert restored.total_points == predictor.total_points

    def test_legacy_v1_flat_state_still_loads(self, predictor, tmp_path):
        state = predictor_to_state(predictor)
        state["version"] = 1
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(state))
        restored = load_predictor(path)
        assert restored.total_points == predictor.total_points


class TestCorruptionStrict:
    @pytest.mark.parametrize("fraction", [0.1, 0.5, 0.9, 0.99])
    def test_truncation_detected(self, saved, fraction):
        saved.write_text(torn_copy(saved.read_text(), fraction))
        with pytest.raises(PersistenceError):
            load_predictor(saved)

    @pytest.mark.parametrize("position", [100, 1000, 5000])
    def test_bit_flip_detected(self, saved, position):
        saved.write_text(bit_flip(saved.read_text(), position))
        with pytest.raises(PersistenceError):
            load_predictor(saved)

    def test_version_mismatch_detected(self, predictor, saved):
        state = predictor_to_state(predictor)
        state["version"] = 99
        from repro.core.persistence import _encode_document

        saved.write_text(_encode_document(state))
        with pytest.raises(PersistenceError, match="version"):
            load_predictor(saved)

    def test_missing_file_raises_persistence_error(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_predictor(tmp_path / "nope.json")

    def test_non_object_document_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(PersistenceError):
            load_predictor(path)

    def test_mangled_legacy_state_wrapped_in_persistence_error(
        self, predictor, tmp_path
    ):
        state = predictor_to_state(predictor)
        state["version"] = 1
        del state["transforms"]
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(state))
        with pytest.raises(PersistenceError):
            load_predictor(path)


class TestRecoveryNonStrict:
    def test_recovers_from_backup_generation(self, predictor, tmp_path):
        path = save_predictor(predictor, tmp_path / "state.json")
        before = predictor.total_points
        predictor.insert([0.5, 0.5], 0, cost=1.0)
        save_predictor(predictor, path)  # rotates the old file to .bak1
        path.write_text(torn_copy(path.read_text(), 0.4))
        restored = load_predictor(path, strict=False)
        assert restored.total_points == before

    def test_walks_past_corrupt_backup_to_older_one(
        self, predictor, tmp_path
    ):
        path = tmp_path / "state.json"
        before = predictor.total_points
        save_predictor(predictor, path, backups=2)
        predictor.insert([0.5, 0.5], 0, cost=1.0)
        save_predictor(predictor, path, backups=2)
        predictor.insert([0.5, 0.6], 0, cost=1.0)
        save_predictor(predictor, path, backups=2)
        path.write_text(torn_copy(path.read_text(), 0.3))
        bak1 = backup_path(path, 1)
        bak1.write_text(bit_flip(bak1.read_text(), 123))
        restored = load_predictor(path, strict=False)
        assert restored.total_points == before

    def test_falls_back_to_cold_predictor(self, saved):
        saved.write_text("{not json")
        cold = cold_predictor()
        restored = load_predictor(saved, strict=False, cold=cold)
        assert restored is cold

    def test_cold_factory_called_lazily(self, predictor, saved):
        calls = []

        def factory():
            calls.append(1)
            return cold_predictor()

        # Intact file: the factory must not run.
        restored = load_predictor(saved, strict=False, cold=factory)
        assert restored.total_points == predictor.total_points
        assert calls == []
        # Corrupt file, no backups: now it must.
        saved.write_text(torn_copy(saved.read_text(), 0.2))
        restored = load_predictor(saved, strict=False, cold=factory)
        assert calls == [1]
        assert restored.total_points == 0

    def test_non_strict_without_cold_reraises_primary_error(self, saved):
        saved.write_text(torn_copy(saved.read_text(), 0.5))
        with pytest.raises(PersistenceError):
            load_predictor(saved, strict=False)

    def test_recovered_cold_predictor_functions(self, saved):
        """The cold fallback is a working predictor, not a stub."""
        saved.write_text("")
        restored = load_predictor(
            saved, strict=False, cold=cold_predictor
        )
        assert restored.predict([0.5, 0.5]) is None  # cold = no samples
        restored.insert([0.2, 0.2], 0, cost=1.0)
        assert restored.total_points == 1


class TestCrashSimulation:
    def test_default_backups_survive_torn_overwrite(
        self, predictor, tmp_path
    ):
        """A crash mid-overwrite (simulated via a direct torn write)
        never loses the previous generation."""
        assert DEFAULT_BACKUPS >= 1
        path = save_predictor(predictor, tmp_path / "state.json")
        save_predictor(predictor, path)
        document = dumps_predictor(predictor)
        for fraction in (0.05, 0.35, 0.65, 0.95):
            path.write_text(document[: int(len(document) * fraction)])
            restored = load_predictor(path, strict=False)
            assert restored.total_points == predictor.total_points

    def test_predictions_identical_after_recovery(
        self, predictor, tmp_path
    ):
        import numpy as np

        path = save_predictor(predictor, tmp_path / "state.json")
        save_predictor(predictor, path)
        path.write_text(torn_copy(path.read_text(), 0.5))
        restored = load_predictor(path, strict=False)
        points = np.random.default_rng(5).uniform(0, 1, size=(100, 2))
        for a, b in zip(
            predictor.predict_batch(points), restored.predict_batch(points), strict=True
        ):
            assert (a is None) == (b is None)
            if a is not None:
                assert a.plan_id == b.plan_id

    def test_fsync_failure_surfaces_as_persistence_error(
        self, predictor, tmp_path, monkeypatch
    ):
        def broken_fsync(fd):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "fsync", broken_fsync)
        with pytest.raises(PersistenceError):
            save_predictor(predictor, tmp_path / "state.json")
