"""APPROXIMATE-LSH-HISTOGRAMS: z-ordered synopses in database histograms.

Section IV-C replaces the per-grid cell arrays of APPROXIMATE-LSH with
database histograms: the cells of each transformed grid are linearized
onto ``[0, 1]`` by a z-order curve, and for every (transform, plan)
pair a histogram summarizes the distribution of that plan's points
along the z-axis, together with their average execution cost.  Density
around a test point becomes a histogram range query over
``[T(x) - delta, T(x) + delta]``, where ``2 * delta`` equals the volume
of the radius-``d`` hypersphere.

Two sanity checks keep the lossy summarization honest:

* **confidence** (Section IV-A) — the majority plan must dominate the
  z-range by enough margin; this suppresses the false positives a
  histogram bucket spanning non-contiguous z-intervals would cause;
* **noise elimination** — the majority plan's density must exceed a
  fixed fraction of the total sample count, suppressing z-order
  artifacts that place a few far-away points into the queried range.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from repro.core.confidence import ConfidenceModel
from repro.core.point import SamplePool
from repro.core.predictor import PlanPredictor, Prediction
from repro.core.relevance import apply_axis_weights
from repro.exceptions import ConfigurationError, PredictionError
from repro.histograms import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    Histogram,
    IncrementalHistogram,
    MaxDiffHistogram,
    VOptimalHistogram,
)
from repro.lsh.grid import Grid
from repro.lsh.transforms import TransformEnsemble
from repro.lsh.zorder import ZOrderCurve

from repro.geometry import ball_volume

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import MetricsRegistry
    from repro.obs.tracing import DecisionTrace

_STATIC_BUILDERS = {
    "maxdiff": MaxDiffHistogram,
    "equidepth": EquiDepthHistogram,
    "equiwidth": EquiWidthHistogram,
    "voptimal": VOptimalHistogram,
}


class HistogramPredictor(PlanPredictor):
    """The paper's flagship structure: LSH + z-order + histograms."""

    def __init__(
        self,
        pool: SamplePool,
        plan_count: "int | None" = None,
        transforms: int = 5,
        resolution: int = 16,
        max_buckets: int = 40,
        radius: float = 0.05,
        confidence_threshold: float = 0.7,
        noise_fraction: "float | None" = None,
        histogram_kind: str = "maxdiff",
        output_dims: "int | None" = None,
        aggregation: str = "median",
        axis_weights: "np.ndarray | None" = None,
        seed: "int | np.random.Generator | None" = 0,
        confidence_model: "ConfidenceModel | None" = None,
    ) -> None:
        if resolution < 2 or resolution & (resolution - 1):
            raise ConfigurationError("resolution must be a power of two >= 2")
        if histogram_kind not in (*_STATIC_BUILDERS, "incremental"):
            raise ConfigurationError(
                f"unknown histogram kind {histogram_kind!r}"
            )
        if radius <= 0.0:
            raise PredictionError("radius must be > 0")
        if aggregation not in ("median", "mean"):
            raise ConfigurationError(f"unknown aggregation {aggregation!r}")
        self.dimensions = pool.dimensions
        self.radius = radius
        self.confidence_threshold = confidence_threshold
        self.noise_fraction = noise_fraction
        self.max_buckets = max_buckets
        self.histogram_kind = histogram_kind
        self.aggregation = aggregation
        self.axis_weights = (
            None if axis_weights is None
            else np.asarray(axis_weights, dtype=float)
        )
        self.model = confidence_model or ConfidenceModel()

        # Default s = r; pass output_dims < r explicitly for
        # dimensionality reduction (useful only on redundant axes).
        self.ensemble = TransformEnsemble(
            transforms,
            self.dimensions,
            output_dims=output_dims,
            resolution=resolution,
            seed=seed,
        )
        self.grids = [
            Grid(*transform.output_bounds, resolution)
            for transform in self.ensemble
        ]
        output_dims = self.ensemble.transforms[0].output_dims
        bits = int(math.log2(resolution))
        if output_dims * bits > 62:
            bits = max(1, 62 // output_dims)
        self.curve = ZOrderCurve(output_dims, bits)

        # 2*delta = volume of the radius-d hypersphere (Section IV-C),
        # floored at one z-order cell so tiny radii still see the
        # containing cell.
        self.delta = max(
            ball_volume(radius, self.dimensions) / 2.0,
            self.curve.cell_extent(),
        )

        if plan_count is None:
            if len(pool) == 0:
                raise PredictionError(
                    "APPROXIMATE-LSH-HISTOGRAMS needs samples "
                    "or an explicit plan count"
                )
            plan_count = int(pool.plan_ids.max()) + 1
        self.plan_count = plan_count
        #: Number of points inserted (integer, weight-independent).
        self.total_points = 0
        #: Total inserted mass: verified points carry weight 1, positive
        #: feedback inserts discounted weights.  Noise elimination
        #: compares against this, matching the weighted bucket counts.
        self.total_mass = 0.0
        self._histograms: list[list[Histogram]] = []
        self._metrics = None
        self._transform_timer = None
        self._range_timer = None
        self._build_histograms(pool)

    def bind_metrics(self, registry: "MetricsRegistry", **labels) -> None:
        """Publish per-predict transform / range-query timings.

        Called by the owning session once the registry and template
        label are known; predictors without a binding skip all timing.
        """
        from repro.obs import names as metric_names

        self._metrics = registry
        self._transform_timer = registry.histogram(
            metric_names.PREDICT_TRANSFORM_SECONDS, **labels
        )
        self._range_timer = registry.histogram(
            metric_names.PREDICT_RANGE_QUERY_SECONDS, **labels
        )

    # ------------------------------------------------------------------
    # Construction / population
    # ------------------------------------------------------------------
    def _new_histogram(self) -> Histogram:
        return IncrementalHistogram(self.max_buckets)

    def _build_histograms(self, pool: SamplePool) -> None:
        if self.histogram_kind == "incremental" or len(pool) == 0:
            self._histograms = [
                [self._new_histogram() for __ in range(self.plan_count)]
                for __ in self.ensemble
            ]
            for point in pool.points():
                self.insert(point.coords, point.plan_id, point.cost)
            return

        builder = _STATIC_BUILDERS[self.histogram_kind]
        plan_ids = pool.plan_ids
        costs = pool.costs
        for index in range(len(self.ensemble)):
            z_values = self._z_values(index, pool.coords)
            row: list[Histogram] = []
            for plan in range(self.plan_count):
                mask = plan_ids == plan
                row.append(
                    builder.build(
                        z_values[mask],
                        costs[mask],
                        bucket_count=self.max_buckets,
                    )
                )
            self._histograms.append(row)
        self.total_points = len(pool)
        self.total_mass = float(len(pool))

    def _z_values(self, transform_index: int, coords: np.ndarray) -> np.ndarray:
        transform = self.ensemble.transforms[transform_index]
        grid = self.grids[transform_index]
        coords = apply_axis_weights(coords, self.axis_weights)
        unit = grid.unit_coords(transform.apply(coords))
        return self.curve.linearize(unit)

    def insert(
        self,
        x: np.ndarray,
        plan_id: int,
        cost: float = 0.0,
        weight: float = 1.0,
    ) -> None:
        """Add one labeled point (requires insertable histograms).

        ``weight < 1`` inserts a discounted point — used by the
        positive-feedback extension for unverified predictions.

        The insert is atomic across transforms: insertability, the
        weight, and every z-value are validated up front, so a rejected
        insert leaves no histogram partially mutated.
        """
        x = self._check_point(x)
        if weight <= 0.0:
            raise PredictionError("insertion weight must be > 0")
        targets = [
            self._histograms[index][plan_id]
            for index in range(len(self.ensemble))
        ]
        if any(not hasattr(histogram, "insert") for histogram in targets):
            raise PredictionError(
                "histogram kind "
                f"{self.histogram_kind!r} does not support insertion; "
                "use histogram_kind='incremental'"
            )
        z_values = [
            float(self._z_values(index, x[None, :])[0])
            for index in range(len(self.ensemble))
        ]
        for histogram, z in zip(targets, z_values, strict=True):
            histogram.insert(z, cost, weight=weight)
        self.total_points += 1
        self.total_mass += weight

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def median_counts(
        self, x: np.ndarray, trace: "DecisionTrace | None" = None
    ) -> np.ndarray:
        """Per-plan range-count aggregated across the ``t`` transforms
        (median by default; mean under the ablation setting).

        With an active ``trace``, every transform's density lookup gets
        its own span (z-value, per-plan counts and average costs, the
        transform's argmax vote) plus an ``aggregate`` span; the
        returned counts are identical either way.
        """
        if trace is not None and trace.active:
            return self._median_counts_traced(x, trace)
        x = self._check_point(x)
        record = self._metrics is not None
        transform_seconds = 0.0
        range_seconds = 0.0
        estimates = np.empty((len(self.ensemble), self.plan_count))
        for index in range(len(self.ensemble)):
            if record:
                started = perf_counter()
            z = float(self._z_values(index, x[None, :])[0])
            if record:
                mid = perf_counter()
                transform_seconds += mid - started
            lo, hi = z - self.delta, z + self.delta
            for plan in range(self.plan_count):
                estimates[index, plan] = self._histograms[index][
                    plan
                ].range_count(lo, hi)
            if record:
                range_seconds += perf_counter() - mid
        if record:
            self._transform_timer.observe(transform_seconds)
            self._range_timer.observe(range_seconds)
        if self.aggregation == "mean":
            return estimates.mean(axis=0)
        return np.median(estimates, axis=0)

    def _median_counts_traced(
        self, x: np.ndarray, trace: "DecisionTrace"
    ) -> np.ndarray:
        """Traced twin of :meth:`median_counts`: same estimates, plus a
        span per transform.  Traced lookups also answer the per-plan
        ``range_cost`` queries (for the avg-cost attribute), extra work
        the untraced hot path never pays."""
        x = self._check_point(x)
        record = self._metrics is not None
        transform_seconds = 0.0
        range_seconds = 0.0
        estimates = np.empty((len(self.ensemble), self.plan_count))
        for index in range(len(self.ensemble)):
            with trace.span("transform") as span:
                started = perf_counter()
                z = float(self._z_values(index, x[None, :])[0])
                mid = perf_counter()
                transform_seconds += mid - started
                lo, hi = z - self.delta, z + self.delta
                avg_costs: "list[float | None]" = []
                for plan in range(self.plan_count):
                    histogram = self._histograms[index][plan]
                    count = histogram.range_count(lo, hi)
                    estimates[index, plan] = count
                    avg_costs.append(
                        float(histogram.range_cost(lo, hi))
                        if count > 0
                        else None
                    )
                range_seconds += perf_counter() - mid
                row = estimates[index]
                span.set(
                    index=index,
                    z=z,
                    z_range=[lo, hi],
                    counts=[float(c) for c in row],
                    avg_costs=avg_costs,
                    vote=int(row.argmax()) if row.max() > 0.0 else None,
                )
        if record:
            self._transform_timer.observe(transform_seconds)
            self._range_timer.observe(range_seconds)
        counts = (
            estimates.mean(axis=0)
            if self.aggregation == "mean"
            else np.median(estimates, axis=0)
        )
        with trace.span("aggregate") as span:
            span.set(
                method=self.aggregation,
                counts=[float(c) for c in counts],
            )
        return counts

    def predict(
        self, x: np.ndarray, trace: "DecisionTrace | None" = None
    ) -> "Prediction | None":
        if trace is not None and trace.active:
            return self._predict_traced(x, trace)
        counts = self.median_counts(x)
        if (
            self.noise_fraction is not None
            and self.total_mass > 0
            and counts.max() < self.noise_fraction * self.total_mass
        ):
            return None
        plan_id, confidence = self.model.decide(
            counts, self.confidence_threshold
        )
        if plan_id is None:
            return None
        return Prediction(plan_id, confidence, self.estimated_cost(x, plan_id))

    def _predict_traced(
        self, x: np.ndarray, trace: "DecisionTrace"
    ) -> "Prediction | None":
        """Traced twin of :meth:`predict` — identical decision, with
        noise-elimination and confidence (γ comparison) spans."""
        counts = self.median_counts(x, trace=trace)
        max_count = float(counts.max())
        threshold = (
            None
            if self.noise_fraction is None
            else self.noise_fraction * self.total_mass
        )
        eliminated = (
            self.noise_fraction is not None
            and self.total_mass > 0
            and max_count < self.noise_fraction * self.total_mass
        )
        with trace.span("noise_elimination") as span:
            span.set(
                max_count=max_count,
                total_mass=self.total_mass,
                noise_fraction=self.noise_fraction,
                threshold=threshold,
                eliminated=eliminated,
            )
        if eliminated:
            return None
        with trace.span("confidence") as span:
            plan_id, confidence, detail = self.model.explain_decide(
                counts, self.confidence_threshold
            )
            span.set(**detail)
        if plan_id is None:
            return None
        return Prediction(plan_id, confidence, self.estimated_cost(x, plan_id))

    def predict_batch(self, points: np.ndarray) -> "list[Prediction | None]":
        """Vectorized prediction for a whole point batch.

        Computes the z-values of every point under every transform at
        once, answers all histogram range queries through the columnar
        bucket views, aggregates, and applies noise elimination plus the
        confidence decision vectorized.  Identical results to calling
        :meth:`predict` per point, at a fraction of the time — the
        operation the runtime simulation charges as "prediction
        overhead".
        """
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        m = points.shape[0]
        t = len(self.ensemble)

        # (t, m) z-values, then (t, plans, m) range counts.
        z_values = np.stack(
            [self._z_values(i, points) for i in range(t)]
        )
        lo = z_values - self.delta
        hi = z_values + self.delta
        estimates = np.empty((t, self.plan_count, m))
        cost_estimates = np.empty((t, self.plan_count, m))
        for i in range(t):
            for plan in range(self.plan_count):
                histogram = self._histograms[i][plan]
                estimates[i, plan] = histogram.range_count_batch(lo[i], hi[i])
                cost_estimates[i, plan] = histogram.range_cost_batch(
                    lo[i], hi[i]
                )
        counts = (  # (plans, m)
            estimates.mean(axis=0)
            if self.aggregation == "mean"
            else np.median(estimates, axis=0)
        )

        winners, confidences = self.model.decide_batch(
            counts.T, self.confidence_threshold
        )
        if self.noise_fraction is not None and self.total_mass > 0:
            noisy = counts.max(axis=0) < self.noise_fraction * self.total_mass
            winners = np.where(noisy, -1, winners)

        predictions: "list[Prediction | None]" = []
        for j in range(m):
            plan_id = int(winners[j])
            if plan_id < 0:
                predictions.append(None)
                continue
            supported = estimates[:, plan_id, j] > 0
            cost = (
                float(np.median(cost_estimates[supported, plan_id, j]))
                if supported.any()
                else None
            )
            predictions.append(
                Prediction(plan_id, float(confidences[j]), cost)
            )
        return predictions

    def estimated_cost(self, x: np.ndarray, plan_id: int) -> "float | None":
        """Median per-transform average cost of the plan around ``x``.

        Because the pool contains only truly optimal points (no
        positive feedback), this estimates the *optimal* cost near
        ``x`` — the quantity negative feedback compares against.
        """
        x = self._check_point(x)
        averages = []
        for index in range(len(self.ensemble)):
            z = float(self._z_values(index, x[None, :])[0])
            histogram = self._histograms[index][plan_id]
            if histogram.range_count(z - self.delta, z + self.delta) > 0:
                averages.append(
                    histogram.range_cost(z - self.delta, z + self.delta)
                )
        if not averages:
            return None
        return float(np.median(averages))

    def cell_densities(self, probes: int = 64) -> np.ndarray:
        """Density mass per (transform, plan, z-cell): shape
        ``(t, plan_count, probes)``.

        Tiles the z-axis ``[0, 1]`` into ``probes`` equal cells and
        answers one batched range-count per (transform, plan) pair —
        the read-only synopsis view the quality scorecard aggregates
        into coverage/purity/entropy.  Never mutates predictor state.
        """
        if probes < 1:
            raise ConfigurationError("probes must be >= 1")
        edges = np.linspace(0.0, 1.0, probes + 1)
        lo, hi = edges[:-1], edges[1:]
        densities = np.empty((len(self.ensemble), self.plan_count, probes))
        for index in range(len(self.ensemble)):
            for plan in range(self.plan_count):
                densities[index, plan] = self._histograms[index][
                    plan
                ].range_count_batch(lo, hi)
        return densities

    def drop(self) -> None:
        """Drop every histogram and restart from scratch (Section IV-E:
        the reaction to a detected plan-space change)."""
        self._histograms = [
            [self._new_histogram() for __ in range(self.plan_count)]
            for __ in self.ensemble
        ]
        self.histogram_kind = "incremental"
        self.total_points = 0
        self.total_mass = 0.0

    def space_bytes(self) -> int:
        """``t * n_plans * b_h * 12`` bytes; actual bucket counts may be
        below the ``b_h`` cap."""
        return sum(
            histogram.space_bytes()
            for row in self._histograms
            for histogram in row
        )
