"""Unit tests for the multi-window SLO burn-rate engine."""

import pytest

from repro.config import SLODefinition
from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry, SLOEngine, evaluate_slo
from repro.obs import names as metric_names
from repro.resilience import VirtualClock


def _rig(interval=1.0, capacity=256):
    from repro.obs import TimeSeriesStore

    registry = MetricsRegistry()
    clock = VirtualClock()
    store = TimeSeriesStore(
        registry, clock=clock.now, capacity=capacity, interval=interval
    )
    return registry, clock, store


HIT_RATE = SLODefinition(
    name="hits",
    signal="hit_rate",
    objective=0.5,
    short_window=10.0,
    long_window=100.0,
)
P95 = SLODefinition(
    name="p95",
    signal="predict_p95",
    objective=0.05,
    short_window=10.0,
    long_window=100.0,
)
REGRET = SLODefinition(
    name="regret",
    signal="regret",
    objective=0.10,
    short_window=10.0,
    long_window=100.0,
)


class TestSLODefinition:
    def test_rejects_unknown_signal(self):
        with pytest.raises(ConfigurationError):
            SLODefinition(name="x", signal="uptime", objective=0.9)

    def test_rejects_inverted_windows_and_burns(self):
        with pytest.raises(ConfigurationError):
            SLODefinition(
                name="x",
                signal="regret",
                objective=0.1,
                short_window=100.0,
                long_window=10.0,
            )
        with pytest.raises(ConfigurationError):
            SLODefinition(
                name="x",
                signal="regret",
                objective=0.1,
                breach_burn=0.5,
                warning_burn=1.0,
            )


class TestBurnRates:
    def test_empty_store_is_ok_not_breach(self):
        __, clock, store = _rig()
        for slo in (HIT_RATE, P95, REGRET):
            verdict = evaluate_slo(slo, store, "Q1", now=clock.now())
            assert verdict["state"] == "ok"
            assert verdict["burn_short"] == 0.0
            assert verdict["burn_long"] == 0.0

    def test_hit_rate_burn_is_windowed_not_lifetime(self):
        registry, clock, store = _rig()
        hits = registry.counter(
            metric_names.CACHE_EVENTS_TOTAL, template="Q1", event="hit"
        )
        misses = registry.counter(
            metric_names.CACHE_EVENTS_TOTAL, template="Q1", event="miss"
        )
        # 90 s of pure hits, then 10 s of pure misses.
        for __ in range(90):
            hits.inc()
            store.sample()
            clock.advance(1.0)
        for __ in range(10):
            misses.inc()
            store.sample()
            clock.advance(1.0)
        verdict = evaluate_slo(HIT_RATE, store, "Q1", now=clock.now())
        # Short window: all misses -> miss fraction 1.0 / budget 0.5 = 2.
        assert verdict["burn_short"] == pytest.approx(2.0, rel=0.15)
        # Long window still mostly hits -> well under warning.
        assert verdict["burn_long"] < 1.0
        assert verdict["state"] == "warning"

    def test_sustained_misses_breach(self):
        registry, clock, store = _rig()
        misses = registry.counter(
            metric_names.CACHE_EVENTS_TOTAL, template="Q1", event="miss"
        )
        for __ in range(120):
            misses.inc()
            store.sample()
            clock.advance(1.0)
        verdict = evaluate_slo(HIT_RATE, store, "Q1", now=clock.now())
        assert verdict["burn_short"] >= 2.0
        assert verdict["burn_long"] >= 2.0
        assert verdict["state"] == "breach"

    def test_predict_p95_burn(self):
        registry, clock, store = _rig()
        hist = registry.histogram(
            metric_names.STAGE_SECONDS, template="Q1", stage="predict"
        )
        for __ in range(20):
            hist.observe(0.2)  # 4x the 0.05 s objective
            store.sample()
            clock.advance(1.0)
        verdict = evaluate_slo(P95, store, "Q1", now=clock.now())
        assert verdict["burn_short"] == pytest.approx(4.0, rel=0.3)
        assert verdict["state"] == "breach"

    def test_regret_burn_normalizes_by_executions(self):
        registry, clock, store = _rig()
        regret = registry.counter(
            metric_names.REGRET_TOTAL, template="Q1"
        )
        executions = registry.counter(
            metric_names.EXECUTIONS_TOTAL, template="Q1"
        )
        # Mean regret 0.05 per execution against a 0.10 budget.
        for __ in range(30):
            executions.inc()
            regret.inc(0.05)
            store.sample()
            clock.advance(1.0)
        verdict = evaluate_slo(REGRET, store, "Q1", now=clock.now())
        assert verdict["burn_short"] == pytest.approx(0.5, rel=0.1)
        assert verdict["state"] == "ok"


class TestSLOEngine:
    def test_rejects_duplicate_slo_names(self):
        registry, __, store = _rig()
        with pytest.raises(ConfigurationError):
            SLOEngine(store, (HIT_RATE, HIT_RATE), registry)

    def test_export_publishes_gauges_that_agree_with_evaluate(self):
        registry, clock, store = _rig()
        misses = registry.counter(
            metric_names.CACHE_EVENTS_TOTAL, template="Q1", event="miss"
        )
        for __ in range(30):
            misses.inc()
            store.sample()
            clock.advance(1.0)
        engine = SLOEngine(store, (HIT_RATE, REGRET), registry)
        now = clock.now()
        verdicts = engine.export(["Q1"], now=now)
        assert set(verdicts) == {"Q1"}
        for row in verdicts["Q1"]:
            state_gauge = registry.gauge_value(
                metric_names.SLO_STATE, template="Q1", slo=row["name"]
            )
            assert state_gauge == ("ok", "warning", "breach").index(
                row["state"]
            )
            for window in ("short", "long"):
                assert registry.gauge_value(
                    metric_names.SLO_BURN_RATE,
                    template="Q1",
                    slo=row["name"],
                    window=window,
                ) == pytest.approx(row[f"burn_{window}"])

    def test_worst_state_ranks_by_severity(self):
        assert SLOEngine.worst_state({}) == "ok"
        assert (
            SLOEngine.worst_state(
                {"Q1": [{"state": "ok"}, {"state": "warning"}]}
            )
            == "warning"
        )
        assert (
            SLOEngine.worst_state(
                {
                    "Q1": [{"state": "ok"}],
                    "Q5": [{"state": "breach"}, {"state": "warning"}],
                }
            )
            == "breach"
        )
