"""Stage profiler: exact clocks, sampling, parity, rendering."""

import numpy as np
import pytest

from repro.buildinfo import VERSION
from repro.config import PPCConfig, ProfileConfig, TraceConfig
from repro.core.framework import PPCFramework, TemplateSession
from repro.exceptions import ConfigurationError
from repro.obs import names as metric_names
from repro.obs.profiling import (
    ProfileTrace,
    StageProfiler,
    render_profile,
)
from repro.obs.tracing import NOOP_TRACE
from repro.tpch import plan_space_for
from repro.workload import RandomTrajectoryWorkload


class FakeClock:
    """Returns 0.0, 1.0, 2.0, ... — one tick per call."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        now = self.t
        self.t += 1.0
        return now


def _hot_config(**overrides) -> PPCConfig:
    return PPCConfig(
        confidence_threshold=0.8,
        mean_invocation_probability=0.05,
        drift_response=False,
        **overrides,
    )


class TestProfileConfig:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ConfigurationError):
            ProfileConfig(interval=0)

    def test_rejects_tiny_path_cap(self):
        with pytest.raises(ConfigurationError):
            ProfileConfig(max_paths=4)

    def test_disabled_by_default(self):
        assert ProfileConfig().enabled is False


class TestStageProfilerClock:
    def test_exact_accumulation_under_fake_clock(self):
        # Each clock call ticks 1s: root opens at t=0; stage "a" spans
        # t=1..2 and "b" t=3..4 (1s each); the root closes at t=5.
        profiler = StageProfiler(ProfileConfig(enabled=True), clock=FakeClock())
        frame = profiler.begin("T")
        frame.enter("a")
        frame.exit()
        frame.enter("b")
        frame.exit()
        frame.complete()
        rows = {
            tuple(row["path"]): row
            for row in profiler.report()["templates"]["T"]["stages"]
        }
        assert rows[("decision",)]["cum_seconds"] == 5.0
        assert rows[("decision", "a")]["cum_seconds"] == 1.0
        assert rows[("decision", "b")]["cum_seconds"] == 1.0
        # Self time of the root excludes the two direct children.
        assert rows[("decision",)]["self_seconds"] == 3.0

    def test_nested_spans_split_self_time(self):
        # predict spans t=1..4 (3s) and contains transform t=2..3 (1s).
        profiler = StageProfiler(ProfileConfig(enabled=True), clock=FakeClock())
        frame = profiler.begin("T")
        frame.enter("predict")
        frame.enter("transform")
        frame.exit()
        frame.exit()
        frame.complete()
        rows = {
            tuple(row["path"]): row
            for row in profiler.report()["templates"]["T"]["stages"]
        }
        predict = rows[("decision", "predict")]
        assert predict["cum_seconds"] == 3.0
        assert predict["self_seconds"] == 2.0
        assert rows[("decision", "predict", "transform")]["cum_seconds"] == 1.0

    def test_complete_drains_open_spans(self):
        # A raised execution leaves spans open; complete() closes them.
        profiler = StageProfiler(ProfileConfig(enabled=True), clock=FakeClock())
        frame = profiler.begin("T")
        frame.enter("predict")
        frame.complete()
        rows = {
            tuple(row["path"]): row
            for row in profiler.report()["templates"]["T"]["stages"]
        }
        assert rows[("decision", "predict")]["calls"] == 1


class TestSampling:
    def test_every_interval_th_execution_profiled(self):
        profiler = StageProfiler(
            ProfileConfig(enabled=True, interval=3), clock=FakeClock()
        )
        frames = [profiler.begin("T") for _ in range(9)]
        sampled = [i for i, frame in enumerate(frames) if frame is not None]
        assert sampled == [0, 3, 6]
        for frame in frames:
            if frame is not None:
                frame.complete()
        payload = profiler.report()["templates"]["T"]
        assert payload["executions_seen"] == 9
        assert payload["executions_profiled"] == 3

    def test_counters_are_per_template(self):
        profiler = StageProfiler(
            ProfileConfig(enabled=True, interval=2), clock=FakeClock()
        )
        assert profiler.begin("A") is not None
        assert profiler.begin("B") is not None  # B's own counter starts at 0
        assert profiler.begin("A") is None

    def test_path_cap_counts_drops(self):
        profiler = StageProfiler(
            ProfileConfig(enabled=True, max_paths=8), clock=FakeClock()
        )
        frame = profiler.begin("T")
        for i in range(16):
            frame.enter(f"stage_{i}")
            frame.exit()
        frame.complete()
        payload = profiler.report()["templates"]["T"]
        assert payload["paths_dropped"] > 0
        assert len(payload["stages"]) <= 8
        assert "truncated" in render_profile(profiler.report())


class TestDisabledIsFree:
    def test_session_owns_no_profiler_when_disabled(self):
        session = TemplateSession(
            plan_space_for("Q1"), _hot_config(), seed=17
        )
        assert session.profiler is None

    def test_unsampled_executions_reuse_noop_singleton(self):
        # With profiling off and tracing past its head, begin() must
        # return the shared NOOP_TRACE object — no per-execution
        # allocation at all.
        session = TemplateSession(
            plan_space_for("Q1"), _hot_config(), seed=17
        )
        for x in RandomTrajectoryWorkload(2, spread=0.02, seed=5).generate(
            session.config.trace.head + 4
        ):
            session.execute(x)
        assert session.tracer.begin() is NOOP_TRACE

    def test_framework_report_is_none_when_disabled(self):
        framework = PPCFramework(_hot_config(), seed=17)
        assert framework.profile_report() is None


class TestLockstepParity:
    def test_profiled_decisions_are_bit_identical(self):
        # The headline invariant: enabling the profiler changes not one
        # bit of any decision over a real workload.
        fields = (
            "predicted",
            "confidence",
            "optimizer_invoked",
            "invocation_reason",
            "executed_plan",
            "execution_cost",
            "optimal_plan",
            "optimal_cost",
        )
        sessions = {
            "off": TemplateSession(
                plan_space_for("Q1"), _hot_config(), seed=17
            ),
            "on": TemplateSession(
                plan_space_for("Q1"),
                _hot_config(
                    profiling=ProfileConfig(enabled=True, interval=1)
                ),
                seed=17,
            ),
        }
        workload = RandomTrajectoryWorkload(2, spread=0.02, seed=5).generate(
            300
        )
        for x in workload:
            records = {
                name: session.execute(x)
                for name, session in sessions.items()
            }
            for field in fields:
                assert getattr(records["on"], field) == getattr(
                    records["off"], field
                ), field
        assert (
            sessions["on"].profiler.report()["templates"]["Q1"][
                "executions_profiled"
            ]
            == 300
        )

    def test_batch_parity_with_profiling(self):
        # The batch path's precomputed vectorized predictions survive:
        # ProfileTrace.active stays False, so profiled batch executions
        # decide exactly like unprofiled ones.
        sessions = {
            "off": TemplateSession(
                plan_space_for("Q1"), _hot_config(), seed=17
            ),
            "on": TemplateSession(
                plan_space_for("Q1"),
                _hot_config(
                    profiling=ProfileConfig(enabled=True, interval=1)
                ),
                seed=17,
            ),
        }
        warm = RandomTrajectoryWorkload(2, spread=0.02, seed=5).generate(100)
        for x in warm:
            for session in sessions.values():
                session.execute(x)
        probes = RandomTrajectoryWorkload(2, spread=0.02, seed=6).generate(
            200
        )
        batches = {
            name: session.execute_batch(probes)
            for name, session in sessions.items()
        }
        for off_record, on_record in zip(
            batches["off"], batches["on"], strict=True
        ):
            assert on_record.executed_plan == off_record.executed_plan
            assert on_record.predicted == off_record.predicted
            assert on_record.confidence == off_record.confidence

    def test_profile_trace_active_is_false(self):
        profiler = StageProfiler(ProfileConfig(enabled=True))
        trace = ProfileTrace(profiler.begin("T"))
        assert trace.active is False
        with trace.span("predict") as span:
            assert span.set(anything=1) is span


class TestDeepSpansAndOutput:
    def _profiled_session(self) -> TemplateSession:
        return TemplateSession(
            plan_space_for("Q1"),
            _hot_config(
                profiling=ProfileConfig(enabled=True, interval=1),
                trace=TraceConfig(interval=1),
            ),
            seed=17,
        )

    def test_traced_executions_contribute_deep_stages(self):
        session = self._profiled_session()
        for x in RandomTrajectoryWorkload(2, spread=0.02, seed=5).generate(
            150
        ):
            session.execute(x)
        paths = {
            tuple(row["path"])
            for row in session.profiler.report()["templates"]["Q1"]["stages"]
        }
        assert ("decision", "normalize") in paths
        assert ("decision", "predict") in paths
        assert ("decision", "predict", "transform") in paths
        assert ("decision", "predict", "aggregate") in paths
        assert ("decision", "predict", "confidence") in paths

    def test_collapsed_stacks_shape(self):
        session = self._profiled_session()
        for x in RandomTrajectoryWorkload(2, spread=0.02, seed=5).generate(
            60
        ):
            session.execute(x)
        stacks = session.profiler.collapsed()
        assert "Q1;decision" in stacks
        assert "Q1;decision;predict" in stacks
        assert all(value >= 0.0 for value in stacks.values())

    def test_render_profile_tree(self):
        session = self._profiled_session()
        for x in RandomTrajectoryWorkload(2, spread=0.02, seed=5).generate(
            60
        ):
            session.execute(x)
        text = render_profile(session.profiler.report())
        assert "template Q1" in text
        assert "decision" in text
        assert "predict" in text

    def test_render_empty_report(self):
        profiler = StageProfiler(ProfileConfig(enabled=True))
        assert "no executions profiled" in render_profile(profiler.report())

    def test_reset_clears_state(self):
        profiler = StageProfiler(
            ProfileConfig(enabled=True), clock=FakeClock()
        )
        profiler.begin("T").complete()
        profiler.reset()
        assert profiler.report()["templates"] == {}


class TestFrameworkIntegration:
    def test_shared_profiler_aggregates_templates(self):
        framework = PPCFramework(
            _hot_config(profiling=ProfileConfig(enabled=True, interval=1)),
            seed=17,
        )
        for template in ("Q1", "Q2"):
            framework.register(plan_space_for(template))
            dims = framework.session(template).plan_space.dimensions
            for x in RandomTrajectoryWorkload(
                dims, spread=0.02, seed=5
            ).generate(40):
                framework.execute(template, x)
        report = framework.profile_report()
        assert set(report["templates"]) == {"Q1", "Q2"}
        for payload in report["templates"].values():
            assert payload["executions_profiled"] == 40

    def test_build_info_gauge_registered(self):
        framework = PPCFramework(_hot_config(), seed=17)
        snapshot = framework.metrics.snapshot()
        gauges = snapshot["gauges"][metric_names.BUILD_INFO]
        (entry,) = gauges
        assert entry["labels"]["version"] == VERSION
        assert entry["labels"]["commit"]
        assert entry["value"] == 1.0

    def test_profiled_point_matches_scalar_numpy_payload(self):
        # Guard against dtype drift: profiled execution accepts the
        # same np.ndarray points as the unprofiled path.
        session = TemplateSession(
            plan_space_for("Q1"),
            _hot_config(profiling=ProfileConfig(enabled=True)),
            seed=17,
        )
        record = session.execute(np.array([0.4, 0.6]))
        assert record.executed_plan >= 0
