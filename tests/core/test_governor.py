"""Multi-template memory governor."""

import numpy as np
import pytest

from repro.config import PPCConfig
from repro.core.framework import TemplateSession
from repro.core.governor import MIN_BUCKETS, MemoryGovernor
from repro.exceptions import ConfigurationError
from repro.workload import RandomTrajectoryWorkload


@pytest.fixture()
def sessions(q1_space, tiny_space):
    config = PPCConfig(confidence_threshold=0.8, drift_response=False)
    hot = TemplateSession(q1_space, config, seed=0)
    cold = TemplateSession(tiny_space, config, seed=1)
    # Fill both with points so their histograms occupy space.
    workload = RandomTrajectoryWorkload(2, spread=0.05, seed=2).generate(200)
    for point in workload:
        hot.execute(point)
        cold.execute(point)
    return hot, cold


class TestAccounting:
    def test_total_bytes_sums_sessions(self, sessions):
        hot, cold = sessions
        governor = MemoryGovernor(budget_bytes=10**9)
        governor.register(hot)
        governor.register(cold)
        assert governor.total_bytes == (
            hot.online.space_bytes() + cold.online.space_bytes()
        )
        assert not governor.over_budget()

    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            MemoryGovernor(0)


class TestEnforcement:
    def test_within_budget_is_a_noop(self, sessions):
        hot, cold = sessions
        governor = MemoryGovernor(budget_bytes=10**9)
        governor.register(hot)
        governor.register(cold)
        assert governor.enforce() == []

    def test_cold_template_shrunk_first(self, sessions):
        hot, cold = sessions
        governor = MemoryGovernor(budget_bytes=10**9)
        governor.register(hot)
        governor.register(cold)
        # Only the hot template keeps being used.
        for __ in range(50):
            governor.touch(q1_name(hot))
        governor.budget_bytes = governor.total_bytes - 1
        actions = governor.enforce()
        assert actions, "must reclaim something"
        assert actions[0].template == cold.plan_space.template.name
        assert actions[0].action == "shrink"

    def test_enforce_reaches_budget(self, sessions):
        hot, cold = sessions
        governor = MemoryGovernor(budget_bytes=10**9)
        governor.register(hot)
        governor.register(cold)
        governor.budget_bytes = governor.total_bytes // 3
        governor.enforce()
        assert governor.total_bytes <= governor.budget_bytes

    def test_floor_leads_to_drop(self, sessions):
        hot, cold = sessions
        governor = MemoryGovernor(budget_bytes=1)  # impossible budget
        governor.register(cold)
        actions = governor.enforce()
        kinds = {a.action for a in actions}
        assert "drop" in kinds
        assert cold.online.sample_count == 0

    def test_shrink_preserves_prediction_ability(self, sessions):
        hot, __ = sessions
        governor = MemoryGovernor(budget_bytes=10**9)
        governor.register(hot)
        governor.budget_bytes = hot.online.space_bytes() // 2
        governor.enforce()
        predictor = hot.online.predictor
        assert predictor.max_buckets >= MIN_BUCKETS
        # The shrunken structure still answers.
        workload = RandomTrajectoryWorkload(2, spread=0.05, seed=2).generate(50)
        answered = sum(
            1 for p in workload if hot.online.predict(p) is not None
        )
        assert answered > 0


def q1_name(session):
    return session.plan_space.template.name
