"""Column statistics: quantile sketches and selectivity maps."""

import numpy as np
import pytest

from repro.exceptions import CatalogError
from repro.optimizer.catalog import Catalog, Column, Table
from repro.optimizer.statistics import (
    CatalogStatistics,
    ColumnStatistics,
    TableStatistics,
)


@pytest.fixture()
def uniform_column():
    return Column("u", 0.0, 100.0, 100)


class TestColumnStatistics:
    def test_uniform_selectivity_is_linear(self, uniform_column):
        stats = ColumnStatistics.uniform(uniform_column)
        assert stats.selectivity_leq(0.0) == pytest.approx(0.0)
        assert stats.selectivity_leq(50.0) == pytest.approx(0.5)
        assert stats.selectivity_leq(100.0) == pytest.approx(1.0)

    def test_selectivity_clamped_outside_domain(self, uniform_column):
        stats = ColumnStatistics.uniform(uniform_column)
        assert stats.selectivity_leq(-10.0) == 0.0
        assert stats.selectivity_leq(500.0) == 1.0

    def test_selectivity_monotone(self, uniform_column):
        stats = ColumnStatistics.uniform(uniform_column)
        values = np.linspace(0, 100, 50)
        sels = stats.selectivity_leq(values)
        assert (np.diff(sels) >= 0).all()

    def test_inverse_round_trip(self, uniform_column):
        stats = ColumnStatistics.uniform(uniform_column)
        for sel in (0.1, 0.33, 0.9):
            value = stats.value_at_selectivity(sel)
            assert stats.selectivity_leq(value) == pytest.approx(sel, abs=1e-9)

    def test_gaussian_mass_concentrated_at_mean(self, uniform_column):
        stats = ColumnStatistics.gaussian(
            uniform_column, mean=50.0, std=10.0, seed=0
        )
        assert stats.selectivity_leq(50.0) == pytest.approx(0.5, abs=0.02)
        # Within one sigma: about 68 % of mass.
        mass = stats.selectivity_leq(60.0) - stats.selectivity_leq(40.0)
        assert mass == pytest.approx(0.68, abs=0.05)

    def test_gaussian_clipped_to_domain(self, uniform_column):
        stats = ColumnStatistics.gaussian(
            uniform_column, mean=50.0, std=40.0, seed=0
        )
        assert stats.quantiles.min() >= 0.0
        assert stats.quantiles.max() <= 100.0

    def test_from_samples_empirical_quantiles(self, uniform_column):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        stats = ColumnStatistics.from_samples(uniform_column, samples)
        assert stats.selectivity_leq(2.5) == pytest.approx(0.5, abs=0.1)

    def test_rejects_decreasing_sketch(self, uniform_column):
        with pytest.raises(CatalogError):
            ColumnStatistics(uniform_column, np.array([2.0, 1.0]))

    def test_rejects_empty_samples(self, uniform_column):
        with pytest.raises(CatalogError):
            ColumnStatistics.from_samples(uniform_column, np.array([]))


class TestCatalogStatistics:
    def test_lookup_chain(self):
        catalog = Catalog()
        column = Column("a", 0, 1, 2)
        catalog.add_table(Table("t", 10, {"a": column}))
        stats = CatalogStatistics(catalog)
        table_stats = TableStatistics("t", 10)
        table_stats.add(ColumnStatistics.uniform(column))
        stats.add_table(table_stats)
        assert stats.column("t", "a").column is column

    def test_missing_statistics_raise(self):
        catalog = Catalog()
        catalog.add_table(Table("t", 10))
        stats = CatalogStatistics(catalog)
        with pytest.raises(CatalogError):
            stats.table("t")
        stats.add_table(TableStatistics("t", 10))
        with pytest.raises(CatalogError):
            stats.column("t", "missing")
