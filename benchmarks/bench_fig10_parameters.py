"""Figure 10: effect of the transform count t and the bucket budget b_h.

(a) precision vs t on templates of increasing dimensionality — the
paper observes precision gains from more transforms, larger at higher
dimensions; (b) recall vs b_h with precision roughly flat — the space
dial of APPROXIMATE-LSH-HISTOGRAMS.
"""

import numpy as np

from _bench_utils import write_result
from repro.experiments.approximation import run_bucket_sweep, run_transform_sweep


def test_fig10a_transform_sweep(benchmark):
    rows = benchmark.pedantic(
        run_transform_sweep,
        kwargs=dict(
            templates=("Q1", "Q5"),
            transform_counts=(3, 5, 7, 9, 11),
            sample_size=3200,
            test_size=600,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Figure 10(a) — precision vs number of transforms t",
        "(gamma = 0.7, |X| = 3200, b_h = 40)",
        "",
        f"{'template':>8s} {'t':>4s} {'precision':>10s} {'recall':>8s}",
    ]
    for row in rows:
        lines.append(
            f"{row.template:>8s} {row.value:4.0f} "
            f"{row.precision:10.3f} {row.recall:8.3f}"
        )
    write_result("fig10a_transform_sweep", lines)

    for template in ("Q1", "Q5"):
        cells = [r for r in rows if r.template == template]
        first, last = cells[0], cells[-1]
        assert last.precision >= first.precision - 0.03


def test_fig10b_bucket_sweep(benchmark):
    rows = benchmark.pedantic(
        run_bucket_sweep,
        kwargs=dict(
            template="Q1",
            bucket_counts=(10, 20, 40, 80, 160),
            sample_size=3200,
            seed=7,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Figure 10(b) — recall vs histogram bucket budget b_h (Q1,",
        "gamma = 0.7, t = 5; precision should stay flat)",
        "",
        f"{'b_h':>5s} {'precision':>10s} {'recall':>8s}",
    ]
    for row in rows:
        lines.append(f"{row.value:5.0f} {row.precision:10.3f} {row.recall:8.3f}")
    write_result("fig10b_bucket_sweep", lines)

    recalls = [row.recall for row in rows]
    precisions = [row.precision for row in rows]
    assert recalls[-1] >= recalls[0]
    assert float(np.ptp(precisions)) < 0.12
