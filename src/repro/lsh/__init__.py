"""Locality-sensitive hashing substrate.

Implements the pre-processing pipeline of Section IV-B/IV-C of the
paper: randomized locality-preserving geometrical transformations of
plan-space points (center, scale, stretch into a hypersphere, project
onto random unit vectors, shift by small random translations), fixed
resolution grids over the transformed spaces, and z-order linearization
of grid cells onto ``[0, 1]`` for storage in database histograms.
"""

from repro.lsh.grid import Grid
from repro.lsh.stacked import StackedEnsemble
from repro.lsh.transforms import (
    PlanSpaceTransform,
    TransformEnsemble,
    hypersphere_radius,
)
from repro.lsh.zorder import ZOrderCurve

__all__ = [
    "Grid",
    "PlanSpaceTransform",
    "StackedEnsemble",
    "TransformEnsemble",
    "hypersphere_radius",
    "ZOrderCurve",
]
