"""Workload generation: query instances, histories and test workloads.

* :mod:`~repro.workload.template` — binding between query-instance
  parameter values and normalized plan-space points (the ``f`` map).
* :mod:`~repro.workload.history` — the workload history of Definition 3.
* :mod:`~repro.workload.uniform` — offline uniform plan-space sampling.
* :mod:`~repro.workload.trajectories` — the random-trajectories online
  workload of Section V (Figure 7).
* :mod:`~repro.workload.drift` — mid-workload plan-space manipulation
  for the drift-detection experiment (Section V-D), generalized into
  intensity-steerable scenario primitives.
* :mod:`~repro.workload.scenarios` — the named adversarial scenario
  fleet with machine-checkable robustness contracts.
* :mod:`~repro.workload.runner` — drives scenario event streams
  through the PPC framework and evaluates contracts.
* :mod:`~repro.workload.replay` — record/replay/verify deterministic
  workload traces (bit-identical decision sequences).
"""

from repro.workload.drift import ManipulatedPlanSpace
from repro.workload.history import HistoryEntry, WorkloadHistory
from repro.workload.mixture import MixtureWorkload
from repro.workload.replay import record_trace, replay_trace, verify_trace
from repro.workload.runner import (
    RunResult,
    ScenarioRunner,
    WorkloadExecutor,
    run_matrix,
)
from repro.workload.scenarios import (
    SCENARIO_NAMES,
    SCENARIOS,
    DriftShift,
    FaultPhase,
    ManipulationSpec,
    QueryEvent,
    Scenario,
    get_scenario,
)
from repro.workload.template import QueryInstance, TemplateBinder
from repro.workload.trajectories import RandomTrajectoryWorkload
from repro.workload.uniform import sample_labeled_pool, sample_points

__all__ = [
    "SCENARIOS",
    "SCENARIO_NAMES",
    "DriftShift",
    "FaultPhase",
    "ManipulatedPlanSpace",
    "ManipulationSpec",
    "HistoryEntry",
    "MixtureWorkload",
    "QueryEvent",
    "RunResult",
    "Scenario",
    "ScenarioRunner",
    "WorkloadExecutor",
    "WorkloadHistory",
    "QueryInstance",
    "TemplateBinder",
    "RandomTrajectoryWorkload",
    "get_scenario",
    "record_trace",
    "replay_trace",
    "run_matrix",
    "sample_labeled_pool",
    "sample_points",
    "verify_trace",
]
