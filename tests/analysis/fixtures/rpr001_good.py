"""Sanctioned randomness: seeded generators, spawned streams."""
import numpy as np

root = np.random.SeedSequence(7)
rng = np.random.default_rng(root)
child = np.random.default_rng(root.spawn(1)[0])

values = rng.random(8)
jitter = child.uniform(0.0, 1.0)
