"""Precision/recall accounting (Definition 4) and sliding windows."""

import pytest

from repro.exceptions import ConfigurationError
from repro.metrics import (
    PredictionOutcome,
    PrecisionRecall,
    SlidingRatio,
    evaluate_predictions,
)
from repro.metrics.classification import summarize


class TestDefinition4:
    def test_mixed_series(self):
        predicted = [1, 2, None, 1, None, 3]
        actual = [1, 9, 1, 1, 2, 3]
        metrics = evaluate_predictions(predicted, actual)
        # 4 answered, 3 correct, 6 total.
        assert metrics.precision == pytest.approx(3 / 4)
        assert metrics.recall == pytest.approx(3 / 6)
        assert metrics.answer_rate == pytest.approx(4 / 6)

    def test_all_null_precision_is_one(self):
        metrics = evaluate_predictions([None, None], [1, 2])
        assert metrics.precision == 1.0
        assert metrics.recall == 0.0

    def test_empty_series(self):
        metrics = evaluate_predictions([], [])
        assert metrics.recall == 0.0
        assert metrics.answer_rate == 0.0

    def test_recall_never_exceeds_precision_times_beta(self):
        predicted = [1, None, 2, 2, None]
        actual = [1, 1, 2, 1, 2]
        metrics = evaluate_predictions(predicted, actual)
        assert metrics.recall == pytest.approx(
            metrics.precision * metrics.answer_rate
        )

    def test_misaligned_series_rejected(self):
        with pytest.raises(ValueError):
            evaluate_predictions([1], [1, 2])

    def test_addition(self):
        a = PrecisionRecall(10, 8, 6)
        b = PrecisionRecall(5, 2, 2)
        total = a + b
        assert total.total == 15
        assert total.answered == 10
        assert total.correct == 8

    def test_outcome_properties(self):
        assert PredictionOutcome(1, 1).correct
        assert not PredictionOutcome(1, 2).correct
        assert not PredictionOutcome(None, 2).correct
        assert not PredictionOutcome(None, 2).answered

    def test_summarize_stream(self):
        outcomes = [PredictionOutcome(1, 1), PredictionOutcome(None, 1)]
        metrics = summarize(iter(outcomes))
        assert metrics.total == 2
        assert metrics.correct == 1


class TestSlidingRatio:
    def test_ratio_over_window(self):
        window = SlidingRatio(window=4)
        for value in (True, True, False, False):
            window.push(value)
        assert window.ratio == pytest.approx(0.5)

    def test_eviction(self):
        window = SlidingRatio(window=2)
        window.push(True)
        window.push(False)
        window.push(False)  # evicts the True
        assert window.ratio == 0.0

    def test_empty_ratio_is_one(self):
        assert SlidingRatio().ratio == 1.0

    def test_count(self):
        window = SlidingRatio(window=3)
        window.push(True)
        assert window.count == 1
        for __ in range(5):
            window.push(False)
        assert window.count == 3

    def test_reset(self):
        window = SlidingRatio(window=3)
        window.push(False)
        window.reset()
        assert window.ratio == 1.0
        assert window.count == 0

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            SlidingRatio(window=0)
