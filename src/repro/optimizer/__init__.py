"""Cost-based query-optimizer substrate.

The paper treats a commercial optimizer as a black box exposing two
functions per query template: ``plan(x)`` — the chosen plan at a point
``x`` of normalized optimizer parameters (predicate selectivities) —
and ``cost(x, p)`` — a plan's estimated execution cost at ``x``.  This
package implements that black box from scratch:

* a catalog of tables, columns and indexes (:mod:`~repro.optimizer.catalog`);
* per-column quantile statistics and selectivity estimation
  (:mod:`~repro.optimizer.statistics`, :mod:`~repro.optimizer.selectivity`);
* a query representation with parameterized predicates
  (:mod:`~repro.optimizer.expressions`);
* physical operators with vectorized cardinality/cost formulas
  (:mod:`~repro.optimizer.operators`, :mod:`~repro.optimizer.cost_model`);
* a System-R style dynamic-programming join enumerator
  (:mod:`~repro.optimizer.enumeration`);
* the :class:`~repro.optimizer.plan_space.PlanSpace` oracle that labels
  arbitrary selectivity points with optimal plans and costs, which is
  what every PPC experiment consumes.
"""

from repro.optimizer.catalog import Catalog, Column, Index, Table
from repro.optimizer.cost_model import CostModel
from repro.optimizer.enumeration import DPEnumerator
from repro.optimizer.expressions import (
    ColumnRef,
    JoinPredicate,
    ParamPredicate,
    QueryTemplate,
)
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.plan_space import PlanSpace
from repro.optimizer.plans import PhysicalPlan
from repro.optimizer.statistics import CatalogStatistics, ColumnStatistics

__all__ = [
    "Catalog",
    "Column",
    "Index",
    "Table",
    "ColumnRef",
    "JoinPredicate",
    "ParamPredicate",
    "QueryTemplate",
    "CostModel",
    "DPEnumerator",
    "Optimizer",
    "PlanSpace",
    "PhysicalPlan",
    "CatalogStatistics",
    "ColumnStatistics",
]
