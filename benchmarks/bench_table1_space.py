"""Table I: complexity and space consumption of the four algorithms.

Instantiates BASELINE, NAIVE, APPROXIMATE-LSH and
APPROXIMATE-LSH-HISTOGRAMS at |X| = 3200 over Q1 and reports the
measured footprints under the paper's byte-accounting model; times the
construction of the histogram structure.
"""

from _bench_utils import write_result
from repro.core.histogram_predictor import HistogramPredictor
from repro.experiments.tables import run_space_accounting
from repro.tpch import plan_space_for
from repro.workload import sample_labeled_pool


def test_table1_space_accounting(benchmark):
    rows = run_space_accounting(template="Q1", sample_size=3200, seed=7)
    lines = [
        "Table I — prediction complexity and space (Q1, |X| = 3200,",
        "t = 5, b_g = 8 per axis, b_h = 40)",
        "",
        f"{'algorithm':28s} {'complexity':>26s} {'space formula':>18s} "
        f"{'measured bytes':>15s}",
    ]
    for row in rows:
        lines.append(
            f"{row.algorithm:28s} {row.prediction_complexity:>26s} "
            f"{row.space_formula:>18s} {row.measured_bytes:15,d}"
        )
    write_result("table1_space", lines)

    by_name = {r.algorithm: r.measured_bytes for r in rows}
    # BASELINE grows with |X|; the synopsis structures do not, and the
    # histograms are the most compact of the LSH family.
    assert by_name["APPROXIMATE-LSH-HISTOGRAMS"] < by_name["APPROXIMATE-LSH"]

    space = plan_space_for("Q1")
    pool = sample_labeled_pool(space, 3200, seed=7)
    benchmark(
        HistogramPredictor,
        pool,
        plan_count=space.plan_count,
        transforms=5,
        max_buckets=40,
        seed=1,
    )
