"""APPROXIMATE-LSH: median density over randomized grids (Section IV-B).

``t`` randomized locality-preserving transformations produce ``t``
independently oriented grids.  Each grid yields one estimate of the
per-plan density around the test point (the count in the bucket
containing the transformed point); the median of the ``t`` estimates
feeds the confidence sanity check.  A bucket misaligned with the plan
clusters in one transform is overruled by the others, so precision
approaches BASELINE at a fraction of the space.

The per-grid synopses live in one contiguous ``(t, plans, cells)``
array pair (counts and cost sums), and every lookup goes through the
stacked transform view, so ``predict_batch`` answers a whole batch of
points in a handful of numpy passes; scalar ``predict`` is a batch of
one over the same core.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.confidence import ConfidenceModel
from repro.core.point import SamplePool
from repro.core.predictor import (
    PlanPredictor,
    Prediction,
    median_supported,
)
from repro.core.relevance import apply_axis_weights
from repro.exceptions import PredictionError
from repro.lsh.grid import Grid
from repro.lsh.stacked import StackedEnsemble
from repro.lsh.transforms import TransformEnsemble

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import _TemplateEmitter
    from repro.obs.tracing import DecisionTrace


class LshPredictor(PlanPredictor):
    """Median-of-``t`` grid densities with the confidence sanity check."""

    def __init__(
        self,
        pool: SamplePool,
        plan_count: "int | None" = None,
        transforms: int = 5,
        resolution: int = 8,
        confidence_threshold: float = 0.7,
        output_dims: "int | None" = None,
        aggregation: str = "median",
        axis_weights: "np.ndarray | None" = None,
        seed: "int | np.random.Generator | None" = 0,
        confidence_model: "ConfidenceModel | None" = None,
    ) -> None:
        if aggregation not in ("median", "mean"):
            raise PredictionError(f"unknown aggregation {aggregation!r}")
        self.dimensions = pool.dimensions
        self.confidence_threshold = confidence_threshold
        self.aggregation = aggregation
        self.axis_weights = (
            None if axis_weights is None
            else np.asarray(axis_weights, dtype=float)
        )
        self.model = confidence_model or ConfidenceModel()
        # Default s = r (the paper's choice for low dimensions); pass
        # output_dims < r explicitly to study dimensionality reduction —
        # it only pays off when some plan-space axes are redundant.
        self.ensemble = TransformEnsemble(
            transforms,
            self.dimensions,
            output_dims=output_dims,
            resolution=resolution,
            seed=seed,
        )
        self.grids = [
            Grid(*transform.output_bounds, resolution)
            for transform in self.ensemble
        ]
        self._rebuild_stacked()
        if plan_count is None:
            if len(pool) == 0:
                raise PredictionError(
                    "APPROXIMATE-LSH needs samples or an explicit plan count"
                )
            plan_count = int(pool.plan_ids.max()) + 1
        self.plan_count = plan_count
        # Struct-of-arrays synopses: one contiguous (t, plans, cells)
        # block each for counts and cost sums.  Indexing `_counts[i]`
        # still yields the per-grid (plans, cells) view older callers
        # (and tests) poke at.
        self._counts = np.zeros(
            (len(self.ensemble), plan_count, self.grids[0].total_cells)
        )
        self._cost_sums = np.zeros_like(self._counts)
        # Lifecycle event emitter; None until a session binds one, so
        # the pool bootstrap below journals nothing.
        self._events = None
        self._mutations = 0
        if len(pool):
            self._insert_pool(pool)

    def _rebuild_stacked(self) -> None:
        """(Re)build the struct-of-arrays transform/grid view; call
        again after replacing ``ensemble`` or ``grids`` wholesale."""
        self._stacked = StackedEnsemble(self.ensemble, self.grids)

    @property
    def mutation_count(self) -> int:
        """Number of synopsis mutations (inserts) so far."""
        return self._mutations

    def bind_events(self, emitter: "_TemplateEmitter") -> None:
        """Attach a lifecycle event emitter (``repro.obs.events``).

        Late binding, mirroring ``HistogramPredictor.bind_events``: the
        constructor's pool bootstrap precedes any emitter, so the
        journal records the synopsis going live and every mutation
        after, not the seed replay.
        """
        self._events = emitter
        self._emit_event(
            "histogram_built",
            histogram_kind="grid",
            transforms=len(self.ensemble),
            plans=self.plan_count,
            points=int(self._counts.sum() // max(len(self.ensemble), 1)),
        )

    def _emit_event(self, kind: str, **fields) -> None:
        """Journal one lifecycle event if an emitter is bound."""
        if self._events is not None:
            self._events(kind, **fields)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def _cell_ids_batch(self, points: np.ndarray) -> np.ndarray:
        """Grid cell ids ``(t, m)`` of each point under every transform
        — plan-independent, computed once per batch."""
        return self._stacked.cell_ids(
            apply_axis_weights(points, self.axis_weights)
        )

    def _insert_pool(self, pool: SamplePool) -> None:
        cells = self._cell_ids_batch(pool.coords)
        plan_ids = np.asarray(pool.plan_ids, dtype=np.int64)
        for index in range(len(self.ensemble)):
            np.add.at(self._counts[index], (plan_ids, cells[index]), 1.0)
            np.add.at(
                self._cost_sums[index], (plan_ids, cells[index]), pool.costs
            )
        self._mutations += 1

    def insert(
        self,
        x: np.ndarray,
        plan_id: int,
        cost: float = 0.0,
        provenance: str = "direct",
    ) -> None:
        """Add one labeled point to every transformed grid.

        ``provenance`` names the decision-flow origin of the point and
        is journaled with the ``point_inserted`` lifecycle event; it
        never affects the insert.
        """
        x = self._check_point(x)
        cells = self._cell_ids_batch(x[None, :])[:, 0]
        for index, cell in enumerate(cells):
            self._counts[index, plan_id, cell] += 1.0
            self._cost_sums[index, plan_id, cell] += cost
        self._mutations += 1
        if self._events is not None:
            self._emit_event(
                "point_inserted",
                plan=int(plan_id),
                cost=float(cost),
                weight=1.0,
                provenance=provenance,
            )

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _cell_estimates(self, cells: np.ndarray) -> np.ndarray:
        """Per-plan bucket counts ``(t, plans, m)`` for cell ids
        ``(t, m)``."""
        t, m = cells.shape
        estimates = np.empty((t, self.plan_count, m))
        for index in range(t):
            estimates[index] = self._counts[index][:, cells[index]]
        return estimates

    def _aggregate(self, estimates: np.ndarray) -> np.ndarray:
        """Median (or mean, under the ablation) over the transform axis."""
        if self.aggregation == "mean":
            return estimates.mean(axis=0)
        return np.median(estimates, axis=0)

    def _winner_costs(
        self, cells: np.ndarray, winners: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized cost estimate for each point's winning plan:
        median over the transforms whose winning-plan bucket holds mass
        of that bucket's average cost.  NULL rows (``winners < 0``)
        gather against plan 0 to stay in bounds; callers never read
        them."""
        t, m = cells.shape
        columns = np.arange(m)
        safe = np.where(winners < 0, 0, winners)
        counts = np.empty((t, m))
        cost_sums = np.empty((t, m))
        for index in range(t):
            counts[index] = self._counts[index][safe, cells[index]]
            cost_sums[index] = self._cost_sums[index][safe, cells[index]]
        supported = counts > 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            averages = np.where(
                supported, cost_sums / np.maximum(counts, 1e-300), np.nan
            )
        return median_supported(averages, supported)

    def median_counts(
        self, x: np.ndarray, trace: "DecisionTrace | None" = None
    ) -> np.ndarray:
        """Per-plan bucket count aggregated across the ``t`` transforms
        (median by default; mean under the ablation setting).

        A batch of one through the struct-of-arrays core.  With an
        active ``trace``, each transform's grid-cell lookup gets a span
        (cell id, per-plan counts, the transform's argmax vote) plus an
        ``aggregate`` span; the counts are identical either way.
        """
        x = self._check_point(x)
        traced = trace is not None and trace.active
        cells = self._cell_ids_batch(x[None, :])
        estimates = self._cell_estimates(cells)
        if traced:
            for index in range(len(self.ensemble)):
                row = estimates[index, :, 0]
                with trace.span("transform") as span:
                    span.set(
                        index=index,
                        cell=int(cells[index, 0]),
                        counts=[float(c) for c in row],
                        vote=int(row.argmax()) if row.max() > 0.0 else None,
                    )
        counts = self._aggregate(estimates)[:, 0]
        if traced:
            with trace.span("aggregate") as span:
                span.set(
                    method=self.aggregation,
                    counts=[float(c) for c in counts],
                )
        return counts

    def predict(
        self, x: np.ndarray, trace: "DecisionTrace | None" = None
    ) -> "Prediction | None":
        """A thin wrapper over a batch of one.

        The untraced path is literally ``predict_batch(x[None, :])[0]``;
        the traced path runs the same numeric core, only adding span
        annotation, so decisions are bit-for-bit identical.
        """
        x = self._check_point(x)
        traced = trace is not None and trace.active
        if not traced:
            return self.predict_batch(x[None, :])[0]
        cells = self._cell_ids_batch(x[None, :])
        counts = self.median_counts(x, trace=trace)
        with trace.span("confidence") as span:
            plan_id, confidence, detail = self.model.explain_decide(
                counts, self.confidence_threshold
            )
            span.set(**detail)
        if plan_id is None:
            return None
        medians, any_support = self._winner_costs(
            cells, np.array([plan_id])
        )
        cost = float(medians[0]) if any_support[0] else None
        return Prediction(plan_id, confidence, cost)

    def predict_batch(self, points: np.ndarray) -> "list[Prediction | None]":
        """Vectorized prediction for a whole point batch — the primitive
        scalar :meth:`predict` wraps.

        The batch is validated up front (shape errors and non-finite
        rows raise, exactly like the scalar guard) and an empty
        ``(0, r)`` batch returns ``[]``.  One stacked pass computes
        every point's grid cell under every transform; the per-plan
        count gather, aggregation, confidence decision and winner cost
        estimates are fully vectorized.
        """
        points = self._check_batch(points)
        m = points.shape[0]
        if m == 0:
            return []
        cells = self._cell_ids_batch(points)
        estimates = self._cell_estimates(cells)
        counts = self._aggregate(estimates)  # (plans, m)
        winners, confidences = self.model.decide_batch(
            counts.T, self.confidence_threshold
        )
        medians, any_support = self._winner_costs(cells, winners)
        return [
            None
            if winners[j] < 0
            else Prediction(
                int(winners[j]),
                float(confidences[j]),
                float(medians[j]) if any_support[j] else None,
            )
            for j in range(m)
        ]

    def space_bytes(self) -> int:
        """``t * n_plans * buckets * 8`` bytes (count + average cost)."""
        return sum(
            self.plan_count * grid.total_cells * 8 for grid in self.grids
        )
