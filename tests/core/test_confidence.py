"""The chord confidence model (Section IV-A)."""

import math

import pytest

from repro.core.confidence import (
    ConfidenceModel,
    confidence_angle,
    confidence_from_ratio,
    segment_fraction,
)
from repro.exceptions import ConfigurationError


class TestGeometry:
    def test_segment_fraction_extremes(self):
        assert segment_fraction(0.0) == 0.0
        assert segment_fraction(math.pi / 2) == pytest.approx(0.5)

    def test_segment_fraction_monotone(self):
        values = [segment_fraction(phi) for phi in (0.2, 0.6, 1.0, 1.4)]
        assert values == sorted(values)

    def test_confidence_zero_at_even_split(self):
        assert confidence_from_ratio(1.0) == pytest.approx(0.0, abs=1e-6)

    def test_confidence_approaches_one(self):
        assert confidence_from_ratio(1e9) > 0.999

    def test_confidence_below_one_ratio_is_zero(self):
        assert confidence_from_ratio(0.5) == 0.0

    def test_confidence_monotone_in_ratio(self):
        values = [confidence_from_ratio(r) for r in (1.5, 3.0, 10.0, 100.0)]
        assert values == sorted(values)

    def test_known_value_ratio_against_geometry(self):
        """For ratio r the minority area fraction is 1/(1+r); check the
        solved angle reproduces it."""
        ratio = 5.0
        theta = confidence_angle(ratio)
        phi = math.pi / 2 - theta
        assert segment_fraction(phi) == pytest.approx(
            1.0 / (1.0 + ratio), abs=1e-9
        )


class TestConfidenceModel:
    def test_table_matches_exact_solver(self):
        model = ConfidenceModel()
        for ratio in (1.3, 2.0, 7.7, 42.0, 500.0):
            tabulated = model.confidence(ratio, 1.0)
            exact = confidence_from_ratio(ratio)
            assert tabulated == pytest.approx(exact, abs=1e-3)

    def test_pure_neighborhood_grows_with_alpha(self):
        model = ConfidenceModel(chi=0.9)
        c1 = model.confidence(1, 0)
        c2 = model.confidence(2, 0)
        c5 = model.confidence(5, 0)
        assert c1 == pytest.approx(0.9)
        assert c2 == pytest.approx(0.99)
        assert c1 < c2 < c5 < 1.0

    def test_minority_majority_returns_zero(self):
        model = ConfidenceModel()
        assert model.confidence(2, 5) == 0.0

    def test_empty_neighborhood_returns_zero(self):
        model = ConfidenceModel()
        assert model.confidence(0, 0) == 0.0

    def test_invalid_chi_rejected(self):
        with pytest.raises(ConfigurationError):
            ConfidenceModel(chi=0.0)
        with pytest.raises(ConfigurationError):
            ConfidenceModel(chi=1.0)


class TestDecide:
    def test_majority_above_threshold_predicted(self):
        model = ConfidenceModel()
        plan, confidence = model.decide([0.0, 50.0, 1.0], threshold=0.7)
        assert plan == 1
        assert confidence > 0.7

    def test_below_threshold_returns_null(self):
        model = ConfidenceModel()
        plan, confidence = model.decide([4.0, 5.0], threshold=0.7)
        assert plan is None
        assert confidence < 0.7

    def test_empty_counts_return_null(self):
        model = ConfidenceModel()
        assert model.decide([], threshold=0.5) == (None, 0.0)
        assert model.decide([0.0, 0.0], threshold=0.5) == (None, 0.0)

    def test_threshold_is_strict(self):
        """Algorithm 1 line 13: predict iff confidence > gamma."""
        model = ConfidenceModel(chi=0.9)
        plan, confidence = model.decide([1.0], threshold=0.9)
        assert confidence == pytest.approx(0.9)
        assert plan is None

    def test_zero_threshold_predicts_any_majority(self):
        model = ConfidenceModel()
        plan, __ = model.decide([1.0, 3.0], threshold=0.0)
        assert plan == 1
