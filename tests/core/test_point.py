"""Sample pools: construction, append, array views."""

import numpy as np
import pytest

from repro.core.point import LabeledPoint, SamplePool
from repro.exceptions import ConfigurationError


class TestSamplePool:
    def test_add_and_views(self):
        pool = SamplePool(2)
        pool.add([0.1, 0.2], plan_id=3, cost=5.0)
        pool.add(np.array([0.3, 0.4]), plan_id=1, cost=7.0)
        assert len(pool) == 2
        assert pool.coords.shape == (2, 2)
        assert pool.plan_ids.tolist() == [3, 1]
        assert pool.costs.tolist() == [5.0, 7.0]

    def test_empty_pool_views(self):
        pool = SamplePool(3)
        assert pool.coords.shape == (0, 3)
        assert pool.plan_ids.shape == (0,)

    def test_dimension_mismatch_rejected(self):
        pool = SamplePool(2)
        with pytest.raises(ConfigurationError):
            pool.add([0.1, 0.2, 0.3], plan_id=0)

    def test_from_arrays(self):
        coords = np.array([[0.1, 0.2], [0.3, 0.4]])
        pool = SamplePool.from_arrays(coords, np.array([1, 2]), np.array([5.0, 6.0]))
        assert len(pool) == 2
        assert pool.dimensions == 2

    def test_from_arrays_default_costs(self):
        pool = SamplePool.from_arrays(np.zeros((3, 2)), np.zeros(3))
        assert pool.costs.tolist() == [0.0, 0.0, 0.0]

    def test_from_arrays_misaligned_rejected(self):
        with pytest.raises(ConfigurationError):
            SamplePool.from_arrays(np.zeros((3, 2)), np.zeros(2))

    def test_points_materialization(self):
        pool = SamplePool(1)
        pool.add([0.5], plan_id=2, cost=3.0)
        points = pool.points()
        assert len(points) == 1
        assert isinstance(points[0], LabeledPoint)
        assert points[0].plan_id == 2

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            SamplePool(0)
