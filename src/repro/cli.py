"""Command-line interface: ``python -m repro <command>``.

Small utilities for poking at the reproduction without writing code:

* ``templates`` — Table III: the nine query templates and plan counts;
* ``diagram Q1`` — ASCII plan diagram of a two-parameter template;
* ``predict Q1 0.3 0.7`` — the optimizer's choice and the per-plan
  costs at one plan-space point;
* ``session Q1 --instances 500`` — run an online plan-caching session
  over a trajectory workload and report the outcome;
* ``stats Q1 Q2 --instances 300`` — run a mixed workload through the
  value-level service and render the observability snapshot (stage
  latencies, invocation reasons, cache hit rates, governor totals) as
  a table, JSON, or Prometheus text;
* ``explain Q1 --point 0.3 0.7`` — warm a session, then run one
  instance fully traced and print the decision's span tree: every LSH
  transform's per-plan densities and vote, the confidence computation
  against γ, noise elimination, and the fallback rung taken;
* ``trace export Q1 --instances 300`` / ``trace audit Q1`` — run a
  fully-traced workload and either export the flight recorder as JSON
  Lines or render the misprediction regret audit (suboptimality
  attributed to the pipeline stage that caused it);
* ``faults Q1 --instances 2000`` — fault-injection bench: run a
  workload with a failing optimizer/predictor and torn persistence
  writes, and report degradations, fallback servings, breaker state
  and snapshot recovery (exits 1 on any uncaught exception);
  ``--trace-out traces.jsonl`` additionally dumps the error-biased
  flight recorders for post-hoc diagnosis;
* ``report Q1 --instances 400`` — run a seeded workload on a virtual
  clock and render the cache-quality health report: per-template
  synopsis scorecards (coverage/purity/entropy), rolling
  accuracy/regret, SLO burn-rate states, and time-series sparklines —
  as text, JSON, or a self-contained HTML page (``--fail-on-breach``
  exits 1 when any SLO breaches);
* ``watch Q1 --iterations 5`` — poll the same health signals between
  workload batches, one status line per template per tick;
* ``scenarios list`` / ``scenarios run --fast`` — the adversarial
  scenario fleet: named, seeded workloads (flash crowds, step/slow
  plan-space drift, bursts, cold-start storms, heavy-tail costs,
  cache-eviction pressure), each asserting machine-checkable
  robustness contracts (exit 1 on any contract breach); ``--out``
  writes the BENCH matrix, ``--record-dir`` records replayable traces;
* ``replay record step_drift --out t.jsonl`` / ``replay run t.jsonl``
  / ``replay verify t.jsonl`` — deterministic workload traces: record
  a scenario's full event stream + decision sequence, re-run it from
  scratch, and verify the replayed decisions are bit-identical
  (exit 1 on any divergence);
* ``profile Q1 --instances 400`` — hot-path stage profiler: run a
  seeded workload with the deterministic in-process profiler enabled
  and print the per-stage call/cumulative/self-time tree (normalize →
  predict → decide → optimize/execute → feedback, plus the
  predictor-internal stages on traced instances);
  ``--collapsed-out stacks.json`` writes collapsed stacks for
  flamegraph tooling;
* ``lineage why --template Q1 --plan 3`` / ``lineage timeline`` /
  ``lineage export --out events.jsonl`` — cache lineage forensics:
  run a workload with the synopsis lifecycle event journal enabled
  (or load an exported journal with ``--journal``) and answer "why is
  plan P cached for template T" with the full insert → feedback →
  eviction/drift provenance chain, render the typed event timeline,
  or export the journal as checksummed JSONL (``--at SEQ`` time-travels
  to any event offset);
* ``plan-profile Q1`` — structural profile of a template's plan space
  (plan-area fractions, region counts);
* ``bench run --suite ci`` / ``bench compare`` / ``bench history`` —
  the unified benchmark harness: run the registered benches, journal
  schema-v2 envelopes to ``benchmarks/results/history.jsonl``, and
  gate the latest run against the committed ``BENCH_*.json`` baselines
  with MAD-widened per-metric tolerances (exit 1 on any regression);
* ``lint`` — the AST-based invariant linter (per-file rules
  RPR001-RPR009: determinism, clock, metrics, persistence, span
  discipline; with ``--effects`` the whole-program rules
  RPR101-RPR105: call-graph purity, predict-path determinism,
  mutation discipline, documented exceptions, lifecycle-event
  coverage — see ``repro lint --list-rules``), exit 1 on fresh
  findings;
* ``assumptions Q1`` — validate plan choice predictability on a template.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import PPCConfig, PPCFramework
from repro.experiments.assumptions import run_assumption_validation
from repro.experiments.diagrams import plan_diagram
from repro.tpch import TEMPLATE_NAMES, plan_space_for, query_template
from repro.workload import RandomTrajectoryWorkload, sample_points


def _cmd_templates(args: argparse.Namespace) -> int:
    print(f"{'name':>4s} {'degree':>7s} {'plans':>6s}  sql")
    for name in TEMPLATE_NAMES:
        template = query_template(name)
        space = plan_space_for(name)
        probes = sample_points(space.dimensions, args.probes, seed=0)
        plans = len(set(space.plan_at(probes).tolist()))
        print(
            f"{name:>4s} {template.parameter_degree:7d} {plans:6d}  "
            f"{template.sql()}"
        )
    return 0


def _cmd_diagram(args: argparse.Namespace) -> int:
    template = query_template(args.template)
    if template.parameter_degree != 2:
        print(
            f"{args.template} has degree {template.parameter_degree}; "
            "diagrams need a 2-parameter template (Q0, Q1, Q2)",
            file=sys.stderr,
        )
        return 1
    diagram = plan_diagram(args.template, resolution=args.resolution)
    print(diagram.render())
    print()
    for plan, fraction in sorted(
        diagram.plan_fractions.items(), key=lambda kv: -kv[1]
    ):
        print(f"P{plan}: {fraction:6.1%}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    space = plan_space_for(args.template)
    if len(args.coords) != space.dimensions:
        print(
            f"{args.template} needs {space.dimensions} coordinates",
            file=sys.stderr,
        )
        return 1
    point = np.array(args.coords)[None, :]
    ids, costs = space.label(point)
    print(f"optimal plan : P{int(ids[0])}  (cost {costs[0]:,.1f})")
    print(space.plan(int(ids[0])).describe())
    print("\nall candidates:")
    matrix = space.cost_matrix(point)[:, 0]
    for plan_id in np.argsort(matrix):
        print(f"  P{int(plan_id)}: {matrix[plan_id]:12,.1f}")
    return 0


def _cmd_session(args: argparse.Namespace) -> int:
    space = plan_space_for(args.template)
    framework = PPCFramework(
        PPCConfig(confidence_threshold=args.gamma), seed=args.seed
    )
    framework.register(space)
    workload = RandomTrajectoryWorkload(
        space.dimensions, spread=args.spread, seed=args.seed
    ).generate(args.instances)
    for point in workload:
        framework.execute(args.template, point)
    session = framework.session(args.template)
    metrics = session.ground_truth_metrics()
    print(f"instances            : {args.instances}")
    print(f"optimizer invocations: {session.optimizer_invocations}")
    print(f"precision            : {metrics.precision:.3f}")
    print(f"recall               : {metrics.recall:.3f}")
    print(f"synopsis bytes       : {session.online.space_bytes():,d}")
    return 0


def _format_stage_row(label: str, digest: dict) -> str:
    return (
        f"  {label:<22s} {digest['count']:>7d} "
        f"{digest['p50'] * 1e3:>9.3f} {digest['p95'] * 1e3:>9.3f} "
        f"{digest['p99'] * 1e3:>9.3f} {digest['max'] * 1e3:>9.3f}"
    )


def _render_stats_table(snapshot: dict) -> None:
    for name, template in snapshot["templates"].items():
        print(
            f"template {name}: {template['executions']} instances, "
            f"{template['optimizer_invocations']} optimizer invocations"
        )
        print(
            f"  {'stage':<22s} {'count':>7s} {'p50 ms':>9s} "
            f"{'p95 ms':>9s} {'p99 ms':>9s} {'max ms':>9s}"
        )
        for stage, digest in template["stage_seconds"].items():
            print(_format_stage_row(stage, digest))
        for label, digest in template["predictor"].items():
            if digest is not None:
                print(_format_stage_row(f"predict/{label[:-8]}", digest))
        reasons = ", ".join(
            f"{reason}={count}"
            for reason, count in template["invocation_reasons"].items()
        )
        print(f"  invocation reasons : {reasons}")
        feedback = template["positive_feedback"]
        print(
            "  positive feedback  : "
            f"accepted={feedback['accepted']} "
            f"rejected={feedback['rejected']}"
        )
        cache = template["cache"]
        print(
            "  plan cache         : "
            f"hits={cache['hits']} misses={cache['misses']} "
            f"evictions={cache['evictions']} "
            f"hit_rate={cache['hit_rate']:.1%} size={cache['size']}"
        )
        print(f"  drift events       : {template['drift_events']}")
        print(f"  synopsis bytes     : {template['synopsis_bytes']:,d}")
    governor = snapshot["governor"]
    if governor is not None:
        print(
            "governor: "
            f"budget={governor['budget_bytes']:,d} B "
            f"resident={governor['total_bytes']:,d} B "
            f"reclaimed={governor['reclaimed_bytes']:,d} B "
            f"shrinks={governor['shrinks']} drops={governor['drops']}"
        )


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.service import PlanCachingService

    if args.instances < 1:
        print("--instances must be >= 1", file=sys.stderr)
        return 1
    if args.budget is not None and args.budget < 1:
        print("--budget must be a positive byte count", file=sys.stderr)
        return 1
    service = PlanCachingService.tpch(
        scale_factor=args.scale,
        config=PPCConfig(confidence_threshold=args.gamma),
        memory_budget_bytes=args.budget,
        seed=args.seed,
    )
    for template in args.templates:
        service.register(template)
    trajectories = {}
    for offset, template in enumerate(args.templates):
        dimensions = service.framework.session(
            template
        ).plan_space.dimensions
        trajectories[template] = RandomTrajectoryWorkload(
            dimensions, spread=args.spread, seed=args.seed + offset
        ).generate(args.instances)
    # Interleave the templates, as a mixed production workload would.
    for index in range(args.instances):
        for template in args.templates:
            service.execute(
                service.instance_at(template, trajectories[template][index])
            )
    if args.format == "prom":
        print(service.prometheus(), end="")
    elif args.format == "json":
        print(json.dumps(service.metrics(), indent=2, sort_keys=True))
    else:
        _render_stats_table(service.metrics())
    return 0


def _trace_service(
    templates: "list[str]",
    gamma: float,
    seed: int,
    scale: float,
    budget: "int | None" = None,
):
    """A service with full (every-execution) decision tracing."""
    from repro.config import TraceConfig
    from repro.service import PlanCachingService

    config = PPCConfig(
        confidence_threshold=gamma,
        trace=TraceConfig(
            interval=1, capacity=4096, error_capacity=512
        ),
    )
    service = PlanCachingService.tpch(
        scale_factor=scale,
        config=config,
        memory_budget_bytes=budget,
        seed=seed,
    )
    for template in templates:
        service.register(template)
    return service


def _run_trace_workload(
    service, templates: "list[str]", instances: int, spread: float, seed: int
) -> None:
    """Interleaved trajectory workload (the ``stats`` shape)."""
    trajectories = {}
    for offset, template in enumerate(templates):
        dimensions = service.framework.session(template).plan_space.dimensions
        trajectories[template] = RandomTrajectoryWorkload(
            dimensions, spread=spread, seed=seed + offset
        ).generate(instances)
    for index in range(instances):
        for template in templates:
            service.execute(
                service.instance_at(template, trajectories[template][index])
            )


def _cmd_explain(args: argparse.Namespace) -> int:
    """Run one instance fully traced and print the span tree."""
    import json

    from repro.exceptions import ReproError
    from repro.obs.tracing import render_trace, trace_to_dict

    service = _trace_service(
        [args.template], args.gamma, args.seed, args.scale
    )
    session = service.framework.session(args.template)
    if len(args.point) != session.plan_space.dimensions:
        print(
            f"{args.template} needs {session.plan_space.dimensions} "
            "point coordinates",
            file=sys.stderr,
        )
        return 1
    if args.warmup:
        _run_trace_workload(
            service, [args.template], args.warmup, args.spread, args.seed
        )
    try:
        trace = service.explain(
            service.instance_at(args.template, np.array(args.point))
        )
    except ReproError as exc:
        print(f"explain failed: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        print(json.dumps(trace_to_dict(trace), indent=2, sort_keys=True))
    else:
        print(render_trace(trace))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Flight-recorder tooling: JSONL export and the regret audit."""
    from repro.core.persistence import atomic_write_text
    from repro.obs.audit import regret_audit
    from repro.obs.tracing import dumps_jsonl

    if args.instances < 1:
        print("--instances must be >= 1", file=sys.stderr)
        return 1
    service = _trace_service(
        args.templates, args.gamma, args.seed, args.scale
    )
    _run_trace_workload(
        service, args.templates, args.instances, args.spread, args.seed
    )
    traces = service.traces()
    if args.action == "export":
        text = dumps_jsonl(traces)
        if args.out:
            atomic_write_text(args.out, text)
            print(f"wrote {len(traces)} traces to {args.out}")
        else:
            print(text, end="")
        return 0
    audit = regret_audit(traces)
    print(
        f"instances traced     : {audit['instances']}"
    )
    print(
        f"suboptimal decisions : {audit['suboptimal']} "
        f"(total regret {audit['total_regret']:.4f})"
    )
    if not audit["stages"]:
        print("no regret to attribute")
        return 0
    print(
        f"  {'stage':<22s} {'count':>6s} {'regret':>9s} "
        f"{'mean x':>8s} {'max x':>8s} {'undetected':>10s}"
    )
    ranked = sorted(
        audit["stages"].items(), key=lambda kv: -kv[1]["total_regret"]
    )
    for stage, bucket in ranked:
        print(
            f"  {stage:<22s} {bucket['count']:>6d} "
            f"{bucket['total_regret']:>9.4f} "
            f"{bucket['mean_suboptimality']:>8.4f} "
            f"{bucket['max_suboptimality']:>8.4f} "
            f"{bucket['undetected']:>10d}"
        )
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Fault-injection bench: prove the pipeline degrades, never dies.

    Runs an interleaved workload with deterministic faults injected
    into the optimizer, the predictor, and persistence snapshots, then
    reports the full resilience accounting.  Exit status 1 if any
    instance raised instead of returning an executable plan.
    """
    import json
    import pathlib
    import tempfile

    from repro.core.histogram_predictor import HistogramPredictor
    from repro.core.persistence import load_predictor
    from repro.core.point import SamplePool
    from repro.exceptions import PersistenceError, ReproError
    from repro.obs import names as metric_names
    from repro.resilience import FaultInjector, FaultSpec, VirtualClock

    if args.instances < 1:
        print("--instances must be >= 1", file=sys.stderr)
        return 1
    clock = VirtualClock()
    injector = FaultInjector(
        {
            "optimizer": FaultSpec(
                failure_probability=args.optimizer_failure
            ),
            "predictor": FaultSpec(
                failure_probability=args.predictor_failure
            ),
            "predictor_insert": FaultSpec(
                failure_probability=args.predictor_failure
            ),
            "persistence": FaultSpec(
                torn_write_probability=args.torn_write
            ),
        },
        seed=args.seed,
        sleep=clock.sleep,
    )
    framework = PPCFramework(
        PPCConfig(confidence_threshold=args.gamma),
        seed=args.seed,
        fault_injector=injector,
        clock=clock,
        sleep=clock.sleep,
    )
    workloads = {}
    for offset, template in enumerate(args.templates):
        space = plan_space_for(template)
        framework.register(space)
        workloads[template] = RandomTrajectoryWorkload(
            space.dimensions, spread=args.spread, seed=args.seed + offset
        ).generate(args.instances)

    state_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-faults-"))
    uncaught = 0
    snapshots = {"attempts": 0, "torn": 0}
    for index in range(args.instances):
        for template in args.templates:
            try:
                framework.execute(template, workloads[template][index])
            except ReproError as exc:
                uncaught += 1
                print(
                    f"uncaught failure on {template}: {exc}",
                    file=sys.stderr,
                )
            # Each instance advances simulated wall-clock, so breaker
            # recovery windows actually elapse.
            clock.advance(0.001)
        if args.snapshot_every and (index + 1) % args.snapshot_every == 0:
            for template in args.templates:
                snapshots["attempts"] += 1
                try:
                    injector.save_predictor(
                        framework.session(template).online.predictor,
                        state_dir / f"{template}.json",
                    )
                except ReproError:
                    snapshots["torn"] += 1

    # Boot-time recovery: every (possibly torn) state file must load
    # with strict=False — from the file, a backup, or a cold start.
    recovery = {}
    for template in args.templates:
        path = state_dir / f"{template}.json"
        if not path.exists():
            continue
        session = framework.session(template)
        try:
            load_predictor(path)
            kind = "intact"
        except PersistenceError:
            kind = "recovered"
        restored = load_predictor(
            path,
            strict=False,
            cold=lambda s=session: HistogramPredictor(
                SamplePool(s.plan_space.dimensions),
                plan_count=s.plan_space.plan_count,
                histogram_kind="incremental",
                seed=0,
            ),
        )
        if kind == "recovered" and restored.total_points == 0:
            kind = "cold"
        recovery[template] = kind

    registry = framework.metrics

    def _series_total(name: str) -> dict[str, int]:
        totals: dict[str, int] = {}
        for labels, value in registry.counter_series(name):
            key = (
                labels.get("component")
                or labels.get("source")
                or labels.get("reason")
                or labels.get("state")
                or labels.get("template", "")
            )
            totals[key] = totals.get(key, 0) + int(value)
        return totals

    fallback_records = [
        r
        for template in args.templates
        for r in framework.session(template).records
        if r.fallback_source
    ]
    report = {
        "instances": args.instances * len(args.templates),
        "uncaught_exceptions": uncaught,
        "injected": injector.summary(),
        "degraded": _series_total(metric_names.DEGRADED_TOTAL),
        "fallback_served": _series_total(
            metric_names.FALLBACK_SERVED_TOTAL
        ),
        "optimizer_retries": sum(
            _series_total(metric_names.OPTIMIZER_RETRIES_TOTAL).values()
        ),
        "breaker": {
            template: {
                "state": framework.session(template).breaker.state,
                "transitions": dict(
                    framework.session(template).breaker.transitions
                ),
            }
            for template in args.templates
        },
        "fallback_suboptimality": {
            "count": len(fallback_records),
            "mean": (
                float(
                    np.mean([r.suboptimality for r in fallback_records])
                )
                if fallback_records
                else 1.0
            ),
            "max": (
                float(max(r.suboptimality for r in fallback_records))
                if fallback_records
                else 1.0
            ),
        },
        "snapshots": {**snapshots, "recovery": recovery},
    }
    if args.trace_out:
        # The default sampler is error-biased, so the dump holds the
        # run-up to every degradation the storm caused.
        from repro.core.persistence import atomic_write_text
        from repro.obs.tracing import dumps_jsonl

        traces = [
            trace
            for template in args.templates
            for trace in framework.session(template).tracer.traces()
        ]
        atomic_write_text(args.trace_out, dumps_jsonl(traces))
        report["traces"] = {
            "recorded": len(traces),
            "path": str(args.trace_out),
        }
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"instances executed   : {report['instances']} "
            f"({len(args.templates)} templates x {args.instances})"
        )
        print(f"uncaught exceptions  : {uncaught}")
        for component, kinds in report["injected"].items():
            injected = ", ".join(
                f"{kind}={count}" for kind, count in kinds.items()
            )
            print(f"injected {component:<12s}: {injected}")
        print(f"degraded             : {report['degraded']}")
        print(f"fallback served      : {report['fallback_served']}")
        print(f"optimizer retries    : {report['optimizer_retries']}")
        for template, breaker in report["breaker"].items():
            print(
                f"breaker {template:<13s}: state={breaker['state']} "
                f"transitions={breaker['transitions']}"
            )
        subopt = report["fallback_suboptimality"]
        print(
            "fallback suboptimality: "
            f"count={subopt['count']} mean={subopt['mean']:.4f} "
            f"max={subopt['max']:.4f}"
        )
        print(
            f"snapshots            : attempts={snapshots['attempts']} "
            f"torn={snapshots['torn']} recovery={recovery}"
        )
        if "traces" in report:
            print(
                f"flight recorder      : "
                f"{report['traces']['recorded']} traces -> "
                f"{report['traces']['path']}"
            )
    return 0 if uncaught == 0 else 1


def _telemetry_service(
    templates: "list[str]",
    gamma: float,
    seed: int,
    scale: float,
    clock,
):
    """A fully-traced service on a virtual clock (report/watch shape).

    Full tracing makes the scorecard's regret attribution meaningful;
    the virtual clock lets a few hundred instances fill real-sized SLO
    windows in milliseconds.
    """
    from repro.config import TraceConfig
    from repro.service import PlanCachingService

    config = PPCConfig(
        confidence_threshold=gamma,
        trace=TraceConfig(interval=1, capacity=1024, error_capacity=256),
    )
    service = PlanCachingService.tpch(
        scale_factor=scale,
        config=config,
        seed=seed,
        clock=clock,
        sleep=clock.sleep,
    )
    for template in templates:
        service.register(template)
    return service


def _run_report_workload(
    service,
    templates: "list[str]",
    instances: int,
    spread: float,
    seed: int,
    clock,
    advance: float,
) -> None:
    """Interleaved trajectory workload, advancing the virtual clock one
    ``advance`` step per round so telemetry windows actually fill."""
    trajectories = {}
    for offset, template in enumerate(templates):
        dimensions = service.framework.session(template).plan_space.dimensions
        trajectories[template] = RandomTrajectoryWorkload(
            dimensions, spread=spread, seed=seed + offset
        ).generate(instances)
    for index in range(instances):
        for template in templates:
            service.execute(
                service.instance_at(template, trajectories[template][index])
            )
        clock.advance(advance)


def _cmd_report(args: argparse.Namespace) -> int:
    """Run a seeded workload and render the health report."""
    from repro.core.persistence import atomic_write_text
    from repro.obs.report import (
        render_report_html,
        render_report_json,
        render_report_text,
    )
    from repro.resilience import VirtualClock

    if args.instances < 1:
        print("--instances must be >= 1", file=sys.stderr)
        return 1
    clock = VirtualClock()
    service = _telemetry_service(
        args.templates, args.gamma, args.seed, args.scale, clock
    )
    _run_report_workload(
        service,
        args.templates,
        args.instances,
        args.spread,
        args.seed,
        clock,
        args.advance,
    )
    report = service.health_report(tail=args.tail)
    if args.format == "json":
        text = render_report_json(report)
    elif args.format == "html":
        text = render_report_html(report)
    else:
        text = render_report_text(report)
    if args.out:
        atomic_write_text(args.out, text)
        print(f"wrote {args.format} report to {args.out}")
    else:
        print(text, end="")
    if args.fail_on_breach and report["worst_state"] == "breach":
        print("SLO breach detected", file=sys.stderr)
        return 1
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """Poll the health signals between workload batches."""
    from repro.resilience import VirtualClock
    from repro.resilience.clocks import system_sleep

    if args.iterations < 1 or args.batch < 1:
        print("--iterations and --batch must be >= 1", file=sys.stderr)
        return 1
    clock = VirtualClock()
    service = _telemetry_service(
        args.templates, args.gamma, args.seed, args.scale, clock
    )
    total = args.iterations * args.batch
    trajectories = {}
    for offset, template in enumerate(args.templates):
        dimensions = service.framework.session(template).plan_space.dimensions
        trajectories[template] = RandomTrajectoryWorkload(
            dimensions, spread=args.spread, seed=args.seed + offset
        ).generate(total)
    index = 0
    for tick in range(args.iterations):
        for __ in range(args.batch):
            for template in args.templates:
                service.execute(
                    service.instance_at(
                        template, trajectories[template][index]
                    )
                )
            clock.advance(args.advance)
            index += 1
        verdicts = service.slo()
        scorecards = service.framework.refresh_quality()
        for template in args.templates:
            states = {row["name"]: row["state"] for row in verdicts[template]}
            worst = max(
                verdicts[template],
                key=lambda row: ("ok", "warning", "breach").index(
                    row["state"]
                ),
            )["state"]
            scorecard = scorecards[template]
            print(
                f"tick {tick + 1:>3d} {template}: {worst:<8s} "
                f"coverage={scorecard['synopsis']['coverage']:.3f} "
                f"accuracy={scorecard['rolling']['accuracy']:.3f} "
                f"regret={scorecard['rolling']['regret']:.4f} "
                f"slo={states}"
            )
        if tick + 1 < args.iterations and args.interval > 0:
            system_sleep(args.interval)
    return 0


#: Experiment registry: name -> (import path, callable, kwargs for a
#: quick run).  ``repro experiment <name>`` runs one and prints its
#: result rows as an aligned table.
EXPERIMENTS: dict[str, tuple[str, str, dict]] = {
    "fig03": (
        "repro.experiments.comparison",
        "run_clustering_comparison",
        {"repeats": 3, "sample_size": 600, "test_size": 600},
    ),
    "fig08": (
        "repro.experiments.approximation",
        "run_approximation_ladder",
        {"sample_sizes": (400, 1600), "test_size": 500},
    ),
    "fig09": (
        "repro.experiments.approximation",
        "run_histogram_comparison",
        {"sample_sizes": (400, 1600), "test_size": 500},
    ),
    "table2": (
        "repro.experiments.approximation",
        "run_confidence_sweep",
        {"sample_size": 1600, "test_size": 500},
    ),
    "fig10a": (
        "repro.experiments.approximation",
        "run_transform_sweep",
        {"templates": ("Q1",), "sample_size": 1600, "test_size": 500},
    ),
    "fig10b": (
        "repro.experiments.approximation",
        "run_bucket_sweep",
        {"sample_size": 1600, "test_size": 500},
    ),
    "fig11": (
        "repro.experiments.online_perf",
        "run_online_performance",
        {"templates": ("Q1",), "spreads": (0.01, 0.04), "radii": (0.1,)},
    ),
    "fig12": (
        "repro.experiments.online_perf",
        "run_feedback_ablation",
        {"workload_size": 600, "repeats": 2},
    ),
    "fig13": (
        "repro.experiments.runtime_perf",
        "run_runtime_comparison",
        {"templates": ("Q1",), "workload_size": 500},
    ),
    "fig14": (
        "repro.experiments.assumptions",
        "run_assumption_validation",
        {"templates": ("Q1",), "test_points": 40, "neighbors_per_point": 60},
    ),
    "table1": ("repro.experiments.tables", "run_space_accounting", {}),
    "table3": (
        "repro.experiments.tables",
        "run_template_inventory",
        {"probe_points": 500},
    ),
    "drift": (
        "repro.experiments.drift",
        "run_estimator_accuracy",
        {"sample_size": 1000, "test_size": 1000},
    ),
    "noise": (
        "repro.experiments.online_perf",
        "run_noise_sweep",
        {"workload_size": 500, "repeats": 2},
    ),
    "invocations": (
        "repro.experiments.online_perf",
        "run_invocation_sweep",
        {"workload_size": 500, "repeats": 2},
    ),
}


def _render_rows(result) -> None:
    """Print experiment output as an aligned table.

    Handles the drivers' return shapes: a list of dataclasses, a single
    dataclass, or a (rows, extra) tuple.
    """
    import dataclasses

    if isinstance(result, tuple):
        result = result[0]
    rows = result if isinstance(result, list) else [result]
    if not rows:
        print("(no rows)")
        return
    if not dataclasses.is_dataclass(rows[0]):
        for row in rows:
            print(row)
        return
    records = []
    for row in rows:
        record = {}
        for field in dataclasses.fields(row):
            value = getattr(row, field.name)
            if hasattr(value, "precision") and hasattr(value, "recall"):
                record["precision"] = f"{value.precision:.3f}"
                record["recall"] = f"{value.recall:.3f}"
            elif isinstance(value, float):
                record[field.name] = f"{value:.3f}"
            elif isinstance(value, (list, np.ndarray, dict)):
                continue  # skip bulky series columns
            else:
                record[field.name] = str(value)
        records.append(record)
    columns = list(records[0])
    widths = {
        c: max(len(c), *(len(r.get(c, "")) for r in records)) for c in columns
    }
    print("  ".join(c.rjust(widths[c]) for c in columns))
    for record in records:
        print(
            "  ".join(record.get(c, "").rjust(widths[c]) for c in columns)
        )


def _print_scenario_row(row: dict) -> None:
    status = "PASS" if row["passed"] else "FAIL"
    print(
        f"{status} {row['scenario']:<22s} "
        f"{row['instances']:>5d} instances  "
        f"{row['errors']:>3d} errors  {row['fallbacks']:>3d} fallbacks"
    )
    for contract in row["contracts"]:
        mark = "ok  " if contract["passed"] else "FAIL"
        print(f"  {mark} {contract['contract']}: {contract['observed']}")


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """Adversarial scenario fleet: list the fleet or run contracts."""
    import json
    import pathlib
    from time import perf_counter

    from repro.bench.runners import scenarios_envelope
    from repro.core.persistence import atomic_write_text
    from repro.workload.replay import record_trace
    from repro.workload.runner import ScenarioRunner
    from repro.workload.scenarios import SCENARIO_NAMES, get_scenario

    if args.action == "list":
        for name in SCENARIO_NAMES:
            scenario = get_scenario(name)
            print(
                f"{name:<22s} assumption {scenario.assumption:<4s} "
                f"templates {','.join(scenario.templates):<12s} "
                f"{scenario.instances}/{scenario.fast_instances} "
                "(full/fast) instances"
            )
            print(f"    {scenario.description}")
        return 0

    from repro.exceptions import ReproError

    names = list(args.names) if args.names else list(SCENARIO_NAMES)
    try:
        scenarios = [get_scenario(name) for name in names]
    except ReproError as exc:
        print(f"scenarios failed: {exc}", file=sys.stderr)
        return 1
    runner = ScenarioRunner(fast=args.fast, batch_size=args.batch_size)
    record_dir = (
        pathlib.Path(args.record_dir) if args.record_dir else None
    )
    if record_dir is not None:
        record_dir.mkdir(parents=True, exist_ok=True)
    rows = []
    started = perf_counter()
    for name, scenario in zip(names, scenarios, strict=True):
        if record_dir is not None:
            result = record_trace(
                scenario,
                record_dir / f"trace_{name}.jsonl",
                fast=args.fast,
                batch_size=args.batch_size,
            )
            # Scenarios that journal the synopsis lifecycle (the drift
            # fleet) also leave their journal next to the trace, so a
            # contract failure ships with its full cache lineage.
            journal = result.executor.framework.events
            if journal is not None and journal.emitted:
                journal.export(record_dir / f"journal_{name}.jsonl")
        else:
            result = runner.run(scenario)
        row = runner.summarize(result)
        rows.append(row)
        _print_scenario_row(row)
    elapsed = perf_counter() - started
    payload = {
        "tier": "fast" if args.fast else "full",
        "batch_size": args.batch_size,
        "scenarios": rows,
        "passed": all(row["passed"] for row in rows),
    }
    if args.out:
        envelope = scenarios_envelope(payload, elapsed)
        atomic_write_text(args.out, json.dumps(envelope, indent=2, sort_keys=True) + "\n")
        print(f"wrote scenario matrix to {args.out}")
    return 0 if payload["passed"] else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    """Deterministic workload traces: record, re-run, verify."""
    import json

    from repro.core.persistence import atomic_write_text
    from repro.workload.replay import (
        record_trace,
        replay_trace,
        verify_trace,
    )
    from repro.exceptions import ReproError
    from repro.workload.scenarios import get_scenario

    if args.action == "record":
        if not args.out:
            print("replay record requires --out", file=sys.stderr)
            return 1
        try:
            result = record_trace(
                get_scenario(args.target),
                args.out,
                fast=args.fast,
                batch_size=args.batch_size,
            )
        except ReproError as exc:
            print(f"replay record failed: {exc}", file=sys.stderr)
            return 1
        print(
            f"recorded {len(result.decisions)} decisions of "
            f"{result.scenario!r} to {args.out}"
        )
        return 0
    if args.action == "run":
        try:
            header, decisions = replay_trace(args.target)
        except (ReproError, OSError) as exc:
            print(f"replay run failed: {exc}", file=sys.stderr)
            return 1
        errors = sum(1 for d in decisions if "error" in d)
        print(
            f"replayed {header['scenario']!r}: {len(decisions)} "
            f"decisions, {errors} errors"
        )
        if args.out:
            text = "\n".join(
                json.dumps(d, sort_keys=True) for d in decisions
            )
            atomic_write_text(args.out, text + "\n")
            print(f"wrote replayed decisions to {args.out}")
        return 0
    try:
        report = verify_trace(args.target)
    except (ReproError, OSError) as exc:
        print(f"replay verify failed: {exc}", file=sys.stderr)
        return 1
    if report["identical"]:
        print(
            f"trace {args.target} verified: {report['instances']} "
            "decisions replayed bit-identically"
        )
        return 0
    print(
        f"trace {args.target} DIVERGED: {len(report['mismatches'])} "
        "mismatching decisions (showing up to 8)",
        file=sys.stderr,
    )
    for mismatch in report["mismatches"]:
        print(json.dumps(mismatch, sort_keys=True), file=sys.stderr)
    return 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    module_name, function_name, kwargs = EXPERIMENTS[args.name]
    module = importlib.import_module(module_name)
    print(f"running {module_name}.{function_name} (reduced parameters; "
          "see benchmarks/ for the full configuration)")
    result = getattr(module, function_name)(**kwargs)
    _render_rows(result)
    return 0


def _cmd_lint_args(lint_argv: list[str]) -> int:
    from repro.analysis.cli import main as lint_main

    return lint_main(lint_argv)


def _cmd_lint(args: argparse.Namespace) -> int:
    return _cmd_lint_args(args.lint_args)


def _cmd_plan_profile(args: argparse.Namespace) -> int:
    from repro.optimizer.diagnostics import profile_plan_space

    space = plan_space_for(args.template)
    profile = profile_plan_space(space, samples=args.samples)
    print(profile.summary())
    print()
    print(f"{'plan':>5s} {'area':>7s}")
    ranked = sorted(profile.area_fractions.items(), key=lambda kv: -kv[1])
    for plan, fraction in ranked:
        print(f"P{plan:<4d} {fraction:7.1%}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Hot-path stage profiler: run a workload, print the stage tree."""
    import json

    from repro.config import ProfileConfig, TraceConfig
    from repro.core.persistence import atomic_write_text
    from repro.obs.profiling import render_profile

    config = PPCConfig(
        confidence_threshold=args.gamma,
        profiling=ProfileConfig(enabled=True, interval=args.every),
        # interval=1 traces every instance, so the predictor-internal
        # stages (transform/aggregate/noise_elimination/confidence)
        # appear in the profile; raise --deep-every to sample them.
        trace=TraceConfig(interval=args.deep_every),
    )
    framework = PPCFramework(config, seed=args.seed)
    for offset, template in enumerate(dict.fromkeys(args.templates)):
        space = plan_space_for(template)
        framework.register(space)
        workload = RandomTrajectoryWorkload(
            space.dimensions, spread=args.spread, seed=args.seed + offset
        ).generate(args.instances)
        for point in workload:
            framework.execute(template, point)
    report = framework.profile_report()
    print(render_profile(report))
    if args.collapsed_out:
        payload = {
            "unit": "microseconds",
            "stacks": framework.profiler.collapsed(),
        }
        atomic_write_text(
            args.collapsed_out,
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
        print(f"wrote collapsed stacks to {args.collapsed_out}")
    return 0


def _cmd_lineage(args: argparse.Namespace) -> int:
    """Cache lineage forensics over the lifecycle event journal."""
    import json

    from repro.config import EventsConfig
    from repro.exceptions import PersistenceError
    from repro.obs.events import (
        export_journal,
        load_journal,
        render_timeline,
    )
    from repro.obs.lineage import LineageEngine

    if args.journal:
        try:
            events, torn_tail = load_journal(args.journal)
        except PersistenceError as exc:
            print(f"lineage: {exc}", file=sys.stderr)
            return 1
        if torn_tail:
            print(
                "warning: journal has a torn tail; final line dropped",
                file=sys.stderr,
            )
        engine = LineageEngine(events)
    else:
        config = PPCConfig(
            confidence_threshold=args.gamma,
            events=EventsConfig(enabled=True, capacity=args.capacity),
        )
        unknown = [
            name for name in args.templates if name not in TEMPLATE_NAMES
        ]
        if unknown:
            print(
                f"lineage: unknown templates {unknown} "
                f"(choose from {', '.join(TEMPLATE_NAMES)})",
                file=sys.stderr,
            )
            return 1
        framework = PPCFramework(config, seed=args.seed)
        for offset, template in enumerate(dict.fromkeys(args.templates)):
            space = plan_space_for(template)
            framework.register(space)
            workload = RandomTrajectoryWorkload(
                space.dimensions, spread=args.spread, seed=args.seed + offset
            ).generate(args.instances)
            for point in workload:
                framework.execute(template, point)
        engine = framework.lineage()

    if args.action == "export":
        if not args.out:
            print("lineage export requires --out PATH", file=sys.stderr)
            return 1
        count = export_journal(engine.events, args.out)
        print(f"wrote {count} lifecycle events to {args.out}")
        return 0

    if args.action == "timeline":
        events = engine.timeline(
            template=args.template, kind=args.kind, at=args.at
        )
        print(render_timeline(events, limit=args.tail))
        return 0

    # why
    if args.template is None or args.plan is None:
        print(
            "lineage why requires --template and --plan", file=sys.stderr
        )
        return 1
    verdict = engine.why(args.template, args.plan, at=args.at)
    if args.json:
        print(json.dumps(verdict, indent=2, sort_keys=True))
        return 0
    print(verdict["explanation"])
    state = engine.state_at(args.template, at=args.at)
    cached = ", ".join(str(plan) for plan in state["cached"]) or "none"
    line = (
        f"cache state at seq {state['at']}: plans [{cached}] cached, "
        f"synopsis generation {state['generation']}, "
        f"{state['evictions']} evictions"
    )
    if state["last_drift"] is not None:
        line += f", last drift drop at seq {state['last_drift']}"
    print(line)
    if verdict["history"]:
        print("history:")
        print(render_timeline(verdict["history"], limit=args.tail))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Unified bench harness: run suites, gate on committed baselines."""
    import pathlib

    from repro.bench import (
        SUITES,
        compare_run,
        load_history,
        metric_history,
        render_compare,
        run_suite,
    )
    from repro.bench.history import latest_run
    from repro.bench.runners import load_baselines
    from repro.exceptions import BenchError

    results_dir = pathlib.Path(args.results_dir)
    history_path = (
        pathlib.Path(args.history)
        if args.history
        else results_dir / "history.jsonl"
    )

    if args.action == "run":
        names = list(args.names) if args.names else list(SUITES[args.suite])
        try:
            outcome = run_suite(
                names,
                results_dir,
                history_path=history_path,
                refresh_baselines=args.refresh_baselines,
                suite_label=args.suite,
                log=print,
            )
        except BenchError as exc:
            print(f"bench run failed: {exc}", file=sys.stderr)
            return 1
        failed = [
            name
            for name, envelope in outcome["envelopes"].items()
            if envelope.get("gate", {}).get("passed") is False
        ]
        if failed:
            print(
                "bench gate failed: " + ", ".join(sorted(failed)),
                file=sys.stderr,
            )
            return 1
        return 0

    if args.action == "compare":
        entries = load_history(history_path)
        try:
            run_id, current = latest_run(entries)
            baselines = load_baselines(results_dir, sorted(current))
        except BenchError as exc:
            print(f"bench compare failed: {exc}", file=sys.stderr)
            return 1
        report = compare_run(
            current,
            baselines,
            history_entries=entries,
            current_run_id=run_id,
        )
        print(
            f"comparing journal run {run_id} against the committed "
            f"baselines in {results_dir}"
        )
        print(render_compare(report))
        return 0 if report["passed"] else 1

    # history: print each metric's run-over-run trajectory.
    entries = load_history(history_path)
    if not entries:
        print(f"no bench history at {history_path}")
        return 0
    benches = sorted(
        {str(entry["bench"]) for entry in entries if "bench" in entry}
    )
    if args.names:
        benches = [name for name in benches if name in set(args.names)]
    for bench in benches:
        metric_names = sorted(
            {
                name
                for entry in entries
                if entry.get("bench") == bench
                for name in entry["envelope"].get("metrics", {})
            }
        )
        for name in metric_names:
            values = metric_history(entries, bench, name)
            trajectory = " -> ".join(f"{value:.4g}" for value in values)
            print(f"{bench}.{name:<28s} {trajectory}")
    return 0


def _cmd_assumptions(args: argparse.Namespace) -> int:
    rows = run_assumption_validation(
        templates=(args.template,),
        distances=(0.01, 0.02, 0.05, 0.1, 0.2),
        test_points=args.points,
        neighbors_per_point=args.neighbors,
    )
    print(f"{'d':>6s} {'P(same plan)':>13s} {'95% LB':>8s}")
    for row in rows:
        print(
            f"{row.distance:6.2f} {row.same_plan_probability:13.3f} "
            f"{row.same_plan_lower_bound_95:8.3f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parametric plan caching (ICDE 2012) reproduction tools",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    templates = commands.add_parser(
        "templates", help="list the Q0-Q8 templates (Table III)"
    )
    templates.add_argument("--probes", type=int, default=1000)
    templates.set_defaults(handler=_cmd_templates)

    diagram = commands.add_parser(
        "diagram", help="ASCII plan diagram of a 2-parameter template"
    )
    diagram.add_argument("template", choices=list(TEMPLATE_NAMES))
    diagram.add_argument("--resolution", type=int, default=40)
    diagram.set_defaults(handler=_cmd_diagram)

    predict = commands.add_parser(
        "predict", help="optimize one plan-space point"
    )
    predict.add_argument("template", choices=list(TEMPLATE_NAMES))
    predict.add_argument("coords", type=float, nargs="+")
    predict.set_defaults(handler=_cmd_predict)

    session = commands.add_parser(
        "session", help="run an online plan-caching session"
    )
    session.add_argument("template", choices=list(TEMPLATE_NAMES))
    session.add_argument("--instances", type=int, default=500)
    session.add_argument("--spread", type=float, default=0.02)
    session.add_argument("--gamma", type=float, default=0.8)
    session.add_argument("--seed", type=int, default=0)
    session.set_defaults(handler=_cmd_session)

    stats = commands.add_parser(
        "stats",
        help="run a mixed workload and render the metrics snapshot",
    )
    stats.add_argument(
        "templates", choices=list(TEMPLATE_NAMES), nargs="+"
    )
    stats.add_argument("--instances", type=int, default=300)
    stats.add_argument("--spread", type=float, default=0.02)
    stats.add_argument("--gamma", type=float, default=0.8)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument("--scale", type=float, default=0.1)
    stats.add_argument(
        "--budget", type=int, default=None,
        help="memory budget in bytes (enables the governor)",
    )
    stats.add_argument(
        "--format", choices=("table", "json", "prom"), default="table"
    )
    stats.set_defaults(handler=_cmd_stats)

    explain = commands.add_parser(
        "explain",
        help="run one instance fully traced and print the span tree",
    )
    explain.add_argument(
        "--template", choices=list(TEMPLATE_NAMES), required=True
    )
    explain.add_argument(
        "--point", type=float, nargs="+", required=True,
        help="plan-space coordinates in [0, 1]^r",
    )
    explain.add_argument(
        "--warmup", type=int, default=200,
        help="trajectory instances executed before the explained one",
    )
    explain.add_argument("--spread", type=float, default=0.02)
    explain.add_argument("--gamma", type=float, default=0.8)
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument("--scale", type=float, default=0.1)
    explain.add_argument(
        "--format", choices=("tree", "json"), default="tree"
    )
    explain.set_defaults(handler=_cmd_explain)

    trace = commands.add_parser(
        "trace",
        help="flight-recorder tooling: JSONL export and the regret audit",
    )
    trace.add_argument("action", choices=("export", "audit"))
    trace.add_argument(
        "templates", choices=list(TEMPLATE_NAMES), nargs="+"
    )
    trace.add_argument("--instances", type=int, default=300)
    trace.add_argument("--spread", type=float, default=0.02)
    trace.add_argument("--gamma", type=float, default=0.8)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--scale", type=float, default=0.1)
    trace.add_argument(
        "--out", default=None,
        help="JSONL destination for export (default: stdout)",
    )
    trace.set_defaults(handler=_cmd_trace)

    faults = commands.add_parser(
        "faults",
        help="fault-injection bench: degraded components, zero crashes",
    )
    faults.add_argument(
        "templates", choices=list(TEMPLATE_NAMES), nargs="+"
    )
    faults.add_argument("--instances", type=int, default=2000)
    faults.add_argument("--optimizer-failure", type=float, default=0.2)
    faults.add_argument("--predictor-failure", type=float, default=0.05)
    faults.add_argument("--torn-write", type=float, default=0.5)
    faults.add_argument("--snapshot-every", type=int, default=250)
    faults.add_argument("--spread", type=float, default=0.02)
    faults.add_argument("--gamma", type=float, default=0.8)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument(
        "--format", choices=("table", "json"), default="table"
    )
    faults.add_argument(
        "--trace-out", default=None,
        help="dump the flight-recorder traces as JSONL to this path",
    )
    faults.set_defaults(handler=_cmd_faults)

    report = commands.add_parser(
        "report",
        help="run a seeded workload and render the cache-quality "
        "health report (scorecards, SLO burn rates, sparklines)",
    )
    report.add_argument(
        "templates", choices=list(TEMPLATE_NAMES), nargs="+"
    )
    report.add_argument("--instances", type=int, default=400)
    report.add_argument("--spread", type=float, default=0.02)
    report.add_argument("--gamma", type=float, default=0.8)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--scale", type=float, default=0.1)
    report.add_argument(
        "--advance", type=float, default=1.0,
        help="simulated seconds per workload round (virtual clock)",
    )
    report.add_argument(
        "--tail", type=int, default=32,
        help="retained points per series in the report payload",
    )
    report.add_argument(
        "--format", choices=("text", "json", "html"), default="text"
    )
    report.add_argument(
        "--out", default=None,
        help="write the rendered report here instead of stdout",
    )
    report.add_argument(
        "--fail-on-breach", action="store_true",
        help="exit 1 when any SLO evaluates to breach",
    )
    report.set_defaults(handler=_cmd_report)

    watch = commands.add_parser(
        "watch",
        help="poll the health signals between workload batches",
    )
    watch.add_argument(
        "templates", choices=list(TEMPLATE_NAMES), nargs="+"
    )
    watch.add_argument("--iterations", type=int, default=5)
    watch.add_argument(
        "--batch", type=int, default=100,
        help="workload instances per template per tick",
    )
    watch.add_argument(
        "--interval", type=float, default=0.0,
        help="real seconds to sleep between ticks (0 = no pacing)",
    )
    watch.add_argument("--spread", type=float, default=0.02)
    watch.add_argument("--gamma", type=float, default=0.8)
    watch.add_argument("--seed", type=int, default=0)
    watch.add_argument("--scale", type=float, default=0.1)
    watch.add_argument("--advance", type=float, default=1.0)
    watch.set_defaults(handler=_cmd_watch)

    lint = commands.add_parser(
        "lint",
        help="invariant linter (RPR rules); args pass through, "
        "e.g. `repro lint src --effects` or `repro lint --selftest`",
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER)
    lint.set_defaults(handler=_cmd_lint)

    scenarios = commands.add_parser(
        "scenarios",
        help="adversarial scenario fleet with robustness contracts",
    )
    scenarios.add_argument("action", choices=("list", "run"))
    scenarios.add_argument(
        "names", nargs="*",
        help="scenario names (default: the whole fleet)",
    )
    scenarios.add_argument(
        "--fast", action="store_true",
        help="run the CI-sized fast tier of each scenario",
    )
    scenarios.add_argument("--batch-size", type=int, default=1)
    scenarios.add_argument(
        "--out", default=None,
        help="write the scenario matrix JSON here",
    )
    scenarios.add_argument(
        "--record-dir", default=None,
        help="also record each run as a replayable trace in this dir",
    )
    scenarios.set_defaults(handler=_cmd_scenarios)

    replay = commands.add_parser(
        "replay",
        help="record / re-run / verify deterministic workload traces",
    )
    replay.add_argument("action", choices=("record", "run", "verify"))
    replay.add_argument(
        "target",
        help="scenario name (record) or trace path (run/verify)",
    )
    replay.add_argument("--fast", action="store_true")
    replay.add_argument("--batch-size", type=int, default=1)
    replay.add_argument("--out", default=None)
    replay.set_defaults(handler=_cmd_replay)

    profile = commands.add_parser(
        "profile",
        help="hot-path stage profiler: per-stage self/cumulative time "
        "over a seeded workload (text tree + collapsed stacks)",
    )
    profile.add_argument(
        "templates", choices=list(TEMPLATE_NAMES), nargs="+"
    )
    profile.add_argument("--instances", type=int, default=400)
    profile.add_argument("--spread", type=float, default=0.02)
    profile.add_argument("--gamma", type=float, default=0.8)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--every", type=int, default=1,
        help="profile every Nth execution per template",
    )
    profile.add_argument(
        "--deep-every", type=int, default=1,
        help="trace-sampling interval feeding the predictor-internal "
        "stages (1 = every instance carries the deep spans)",
    )
    profile.add_argument(
        "--collapsed-out", default=None,
        help="write collapsed-stack JSON (flamegraph input) here",
    )
    profile.set_defaults(handler=_cmd_profile)

    lineage = commands.add_parser(
        "lineage",
        help="cache lineage forensics over the synopsis lifecycle "
        "journal: provenance queries (why), typed event timeline, "
        "checksummed JSONL export",
    )
    lineage.add_argument("action", choices=("why", "timeline", "export"))
    lineage.add_argument(
        "--journal", default=None,
        help="load an exported journal instead of running a workload",
    )
    lineage.add_argument(
        "--template", default=None,
        help="template id (required for why; filters timeline)",
    )
    lineage.add_argument(
        "--plan", type=int, default=None,
        help="plan id to explain (why)",
    )
    lineage.add_argument(
        "--at", type=int, default=None,
        help="time-travel: reconstruct state after this event seq "
        "(default: end of stream)",
    )
    lineage.add_argument(
        "--kind", default=None,
        help="filter the timeline to one event kind",
    )
    lineage.add_argument("--tail", type=int, default=40)
    lineage.add_argument(
        "--json", action="store_true",
        help="emit the why verdict as JSON",
    )
    lineage.add_argument("--out", default=None, help="export path")
    lineage.add_argument(
        "templates", nargs="*", default=["Q1"],
        metavar="TEMPLATE",
        help="templates to drive when no --journal is given "
        "(default: Q1)",
    )
    lineage.add_argument("--instances", type=int, default=400)
    lineage.add_argument("--spread", type=float, default=0.02)
    lineage.add_argument("--gamma", type=float, default=0.8)
    lineage.add_argument("--seed", type=int, default=0)
    lineage.add_argument("--capacity", type=int, default=4096)
    lineage.set_defaults(handler=_cmd_lineage)

    plan_profile = commands.add_parser(
        "plan-profile",
        help="structural profile of a template's plan space",
    )
    plan_profile.add_argument("template", choices=list(TEMPLATE_NAMES))
    plan_profile.add_argument("--samples", type=int, default=3000)
    plan_profile.set_defaults(handler=_cmd_plan_profile)

    bench = commands.add_parser(
        "bench",
        help="unified bench harness: run suites into the history "
        "journal, compare the latest run against the committed "
        "baselines (exit 1 on regression), print metric trajectories",
    )
    bench.add_argument("action", choices=("run", "compare", "history"))
    bench.add_argument(
        "names", nargs="*",
        help="bench names (run: override the suite; history: filter)",
    )
    bench.add_argument("--suite", choices=("ci", "full"), default="ci")
    bench.add_argument(
        "--results-dir", default="benchmarks/results",
        help="where the committed BENCH_*.json baselines live",
    )
    bench.add_argument(
        "--history", default=None,
        help="history journal path "
        "(default: <results-dir>/history.jsonl)",
    )
    bench.add_argument(
        "--refresh-baselines", action="store_true",
        help="rewrite the committed baseline snapshots from this run",
    )
    bench.add_argument(
        "--against", choices=("committed",), default="committed",
        help="what compare judges the latest journal run against",
    )
    bench.set_defaults(handler=_cmd_bench)

    experiment = commands.add_parser(
        "experiment", help="run one paper experiment at reduced scale"
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.set_defaults(handler=_cmd_experiment)

    assumptions = commands.add_parser(
        "assumptions", help="validate plan choice predictability"
    )
    assumptions.add_argument("template", choices=list(TEMPLATE_NAMES))
    assumptions.add_argument("--points", type=int, default=50)
    assumptions.add_argument("--neighbors", type=int, default=100)
    assumptions.set_defaults(handler=_cmd_assumptions)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # ``lint`` forwards everything to the linter's own parser; argparse's
    # REMAINDER would swallow leading flags (``repro lint --selftest``),
    # so hand over before parsing.
    if argv and argv[0] == "lint":
        return _cmd_lint_args(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
