"""The PPC framework decision flow (Figure 1)."""

import numpy as np
import pytest

from repro.config import PPCConfig
from repro.core.framework import PPCFramework, TemplateSession
from repro.workload import RandomTrajectoryWorkload


@pytest.fixture()
def session(tiny_space):
    config = PPCConfig(
        confidence_threshold=0.6,
        mean_invocation_probability=0.05,
        drift_response=False,
    )
    return TemplateSession(tiny_space, config, seed=0)


class TestDecisionFlow:
    def test_first_instance_always_optimizes(self, session):
        record = session.execute(np.array([0.5, 0.5]))
        assert record.optimizer_invoked
        assert record.invocation_reason == "null_prediction"
        assert record.executed_plan == record.optimal_plan

    def test_repeated_instances_eventually_cached(self, session):
        x = np.array([0.3, 0.3])
        for __ in range(10):
            record = session.execute(x)
        assert record.predicted is not None
        assert record.predicted == record.optimal_plan
        # At least one execution must have run without the optimizer.
        assert session.optimizer_invocations < 10

    def test_records_carry_ground_truth(self, session):
        record = session.execute(np.array([0.2, 0.8]))
        ids, costs = session.plan_space.label(np.array([[0.2, 0.8]]))
        assert record.optimal_plan == ids[0]
        assert record.optimal_cost == pytest.approx(costs[0])

    def test_suboptimality_of_optimal_execution_is_one(self, session):
        record = session.execute(np.array([0.5, 0.5]))
        assert record.suboptimality == pytest.approx(1.0)

    def test_ground_truth_metrics_accumulate(self, session):
        for x in np.random.default_rng(0).uniform(0, 1, (30, 2)):
            session.execute(x)
        metrics = session.ground_truth_metrics()
        assert metrics.total == 30
        assert 0.0 <= metrics.precision <= 1.0

    def test_cache_populated_on_invocation(self, session):
        record = session.execute(np.array([0.5, 0.5]))
        assert record.executed_plan in session.cache


class TestDriftResponse:
    def test_sustained_failure_triggers_drop(self, tiny_space):
        config = PPCConfig(
            confidence_threshold=0.3,
            mean_invocation_probability=0.0,
            negative_feedback=True,
            drift_response=True,
            drift_threshold=0.99,  # hair-trigger for the test
            drift_min_observations=5,
            monitor_window=10,
        )
        session = TemplateSession(tiny_space, config, seed=0)
        # Teach the predictor lies: a wrong plan with an absurdly low
        # cost, so every predicted execution blows the cost bound, the
        # negative feedback path reveals the mispredictions, and the
        # sliding precision estimate collapses.
        x = np.array([0.5, 0.5])
        true_plan = int(tiny_space.plan_at(x[None, :])[0])
        wrong_plan = (true_plan + 1) % tiny_space.plan_count
        for __ in range(12):
            session.online.observe(x, wrong_plan, cost=1.0)
        fired = False
        for __ in range(30):
            record = session.execute(x)
            if record.drift_triggered:
                fired = True
                break
        assert fired
        assert session.drift_events >= 1
        assert session.online.sample_count <= 1


class TestMultiTemplate:
    def test_framework_routes_by_template(self, tiny_space, q1_space):
        framework = PPCFramework(
            PPCConfig(drift_response=False), seed=0
        )
        framework.register(tiny_space)
        framework.register(q1_space)
        framework.execute("tiny", np.array([0.5, 0.5]))
        framework.execute("Q1", np.array([0.5, 0.5]))
        assert framework.session("tiny").records[0].template == "tiny"
        assert framework.session("Q1").records[0].template == "Q1"
        assert framework.optimizer_invocations == 2

    def test_online_workload_learns(self, q1_space):
        framework = PPCFramework(
            PPCConfig(drift_response=False, confidence_threshold=0.8),
            seed=0,
        )
        framework.register(q1_space)
        workload = RandomTrajectoryWorkload(2, spread=0.02, seed=3).generate(300)
        for point in workload:
            framework.execute("Q1", point)
        session = framework.session("Q1")
        metrics = session.ground_truth_metrics()
        assert metrics.precision > 0.9
        assert metrics.recall > 0.3
        assert session.optimizer_invocations < 300
