"""Deterministic workload traces: record once, re-run bit-identically.

A **trace** is a JSONL file holding everything one scenario run needs
to be reproduced from scratch:

* a ``header`` line — scenario name, seed, instance count, batch size,
  the *ordered* template list (the framework spawns per-template RNG
  streams by registration order), the per-template manipulation specs,
  and the full :class:`~repro.config.PPCConfig` as nested dicts;
* one ``query`` / ``drift`` / ``fault`` line per scenario event, in
  stream order (clock ticks travel on the query events' ``advance``);
* one ``decision`` line per executed instance — the
  :func:`~repro.workload.runner.decision_digest` the original run
  produced.

Because JSON serializes floats via ``repr`` (round-trip exact for
IEEE-754 doubles) and every source of nondeterminism is pinned in the
header (seeds, registration order, batch grouping, fault schedule,
virtual-clock discipline), re-driving the recorded events through a
fresh :class:`~repro.workload.runner.WorkloadExecutor` must reproduce
the recorded decisions **exactly** — same plan choices, same
confidences, same fallback events, bit for bit.  :func:`verify_trace`
asserts that, making a committed trace a cross-version determinism
regression test: any change that silently perturbs the decision flow
breaks verification loudly.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict
from typing import Any

from repro.config import (
    EventsConfig,
    PPCConfig,
    ProfileConfig,
    ResilienceConfig,
    SLODefinition,
    TelemetryConfig,
    TraceConfig,
)
from repro.core.persistence import atomic_write_text
from repro.exceptions import ConfigurationError
from repro.resilience.faults import FaultSpec
from repro.workload.runner import RunResult, ScenarioRunner, WorkloadExecutor
from repro.workload.scenarios import (
    DriftShift,
    FaultPhase,
    ManipulationSpec,
    QueryEvent,
    Scenario,
)

#: Bumped on any incompatible trace-format change.
TRACE_VERSION = 1


# ----------------------------------------------------------------------
# Config round-trip
# ----------------------------------------------------------------------
def config_to_dict(config: PPCConfig) -> "dict[str, Any]":
    """Nested-dict form of a config (``dataclasses.asdict``)."""
    return asdict(config)


def config_from_dict(payload: "dict[str, Any]") -> PPCConfig:
    """Rebuild a :class:`PPCConfig` from its nested-dict form."""
    data = dict(payload)
    data["resilience"] = ResilienceConfig(**data["resilience"])
    data["trace"] = TraceConfig(**data["trace"])
    if "profiling" in data:  # absent in traces recorded before schema v2
        data["profiling"] = ProfileConfig(**data["profiling"])
    if "events" in data:  # absent in traces recorded before the journal
        data["events"] = EventsConfig(**data["events"])
    telemetry = dict(data["telemetry"])
    telemetry["slos"] = tuple(
        SLODefinition(**slo) for slo in telemetry["slos"]
    )
    data["telemetry"] = TelemetryConfig(**telemetry)
    return PPCConfig(**data)


# ----------------------------------------------------------------------
# Event round-trip
# ----------------------------------------------------------------------
def event_to_dict(event: Any) -> "dict[str, Any]":
    if isinstance(event, QueryEvent):
        return {
            "kind": "query",
            "template": event.template,
            "point": list(event.point),
            "advance": event.advance,
        }
    if isinstance(event, DriftShift):
        return {
            "kind": "drift",
            "template": event.template,
            "intensity": event.intensity,
        }
    if isinstance(event, FaultPhase):
        return {
            "kind": "fault",
            "component": event.component,
            "spec": None if event.spec is None else asdict(event.spec),
        }
    raise ConfigurationError(
        f"unknown scenario event {type(event).__name__}"
    )


def event_from_dict(payload: "dict[str, Any]") -> Any:
    kind = payload.get("kind")
    if kind == "query":
        return QueryEvent(
            template=payload["template"],
            point=tuple(float(v) for v in payload["point"]),
            advance=float(payload["advance"]),
        )
    if kind == "drift":
        return DriftShift(
            template=payload["template"],
            intensity=float(payload["intensity"]),
        )
    if kind == "fault":
        spec = payload["spec"]
        return FaultPhase(
            component=payload["component"],
            spec=None if spec is None else FaultSpec(**spec),
        )
    raise ConfigurationError(f"unknown trace event kind {kind!r}")


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
def _executor_events_digest(executor: WorkloadExecutor) -> "str | None":
    """Digest of the run's lifecycle journal (None when disabled)."""
    journal = executor.framework.events
    return None if journal is None else journal.digest()


def record_trace(
    scenario: Scenario,
    path: "str | pathlib.Path",
    fast: bool = False,
    batch_size: int = 1,
) -> RunResult:
    """Run ``scenario`` and write the self-contained trace to ``path``.

    Returns the live :class:`RunResult` (contracts evaluated) so one
    run can feed both the bench matrix and the trace artifact.
    """
    runner = ScenarioRunner(fast=fast, batch_size=batch_size)
    count = runner.instance_count(scenario)
    executor = runner.build_executor(scenario)
    dims = {
        name: executor.framework.session(name).plan_space.dimensions
        for name in scenario.templates
    }
    events = scenario.events(count, dims)
    decisions = executor.drive(events)
    result = RunResult(
        scenario=scenario.name,
        seed=scenario.seed,
        count=count,
        batch_size=batch_size,
        decisions=decisions,
        executor=executor,
    )
    result.verdicts = [
        contract.evaluate(result)
        for contract in scenario.contracts(count)
    ]
    header = {
        "kind": "header",
        "version": TRACE_VERSION,
        "scenario": scenario.name,
        "seed": scenario.seed,
        "instances": count,
        "batch_size": batch_size,
        "templates": list(scenario.templates),
        "manipulation": {
            name: asdict(spec) for name, spec in scenario.manipulation
        },
        "config": config_to_dict(scenario.config),
        # Running sha256 over the canonical lifecycle event stream
        # (None when the journal is disabled): a replay must reproduce
        # not just the decisions but the whole synopsis lifecycle.
        "events_digest": _executor_events_digest(executor),
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps(event_to_dict(event), sort_keys=True)
        for event in events
    )
    lines.extend(
        json.dumps({"kind": "decision", **digest}, sort_keys=True)
        for digest in decisions
    )
    atomic_write_text(path, "\n".join(lines) + "\n")
    return result


# ----------------------------------------------------------------------
# Loading and re-running
# ----------------------------------------------------------------------
def load_trace(
    path: "str | pathlib.Path",
) -> "tuple[dict[str, Any], list[Any], list[dict[str, Any]]]":
    """Parse a trace file into ``(header, events, decisions)``."""
    path = pathlib.Path(path)
    header: "dict[str, Any] | None" = None
    events: "list[Any]" = []
    decisions: "list[dict[str, Any]]" = []
    for number, raw in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        raw = raw.strip()
        if not raw:
            continue
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path}:{number}: not valid JSON: {exc}"
            ) from exc
        kind = payload.get("kind")
        if kind == "header":
            if header is not None:
                raise ConfigurationError(
                    f"{path}:{number}: duplicate trace header"
                )
            if payload.get("version") != TRACE_VERSION:
                raise ConfigurationError(
                    f"{path}: trace version {payload.get('version')!r} "
                    f"is not supported (expected {TRACE_VERSION})"
                )
            header = payload
        elif kind == "decision":
            decision = dict(payload)
            decision.pop("kind")
            decisions.append(decision)
        else:
            events.append(event_from_dict(payload))
    if header is None:
        raise ConfigurationError(f"{path}: trace has no header line")
    return header, events, decisions


def executor_from_header(header: "dict[str, Any]") -> WorkloadExecutor:
    """Rebuild the deterministic run environment a trace describes."""
    from repro.tpch import plan_space_for

    templates = tuple(header["templates"])
    manipulation = tuple(
        (name, ManipulationSpec(**spec))
        for name, spec in header.get("manipulation", {}).items()
    )
    return WorkloadExecutor(
        templates=templates,
        plan_spaces={name: plan_space_for(name) for name in templates},
        config=config_from_dict(header["config"]),
        seed=int(header["seed"]),
        batch_size=int(header["batch_size"]),
        manipulation=manipulation,
    )


def replay_trace(
    path: "str | pathlib.Path",
) -> "tuple[dict[str, Any], list[dict[str, Any]]]":
    """Re-run a recorded trace; ``(header, replayed decisions)``."""
    header, events, __ = load_trace(path)
    executor = executor_from_header(header)
    return header, executor.drive(events)


def verify_trace(path: "str | pathlib.Path") -> "dict[str, Any]":
    """Re-run a trace and compare against its recorded decisions.

    The comparison is exact dict equality per instance — floats
    round-trip losslessly through JSON, so any numeric deviation is a
    real decision-flow divergence, not serialization noise.  When the
    trace header carries an ``events_digest``, the replayed lifecycle
    journal must hash to the same value: the synopsis event stream is
    part of the determinism contract, not just the decisions.
    """
    header, events, recorded = load_trace(path)
    executor = executor_from_header(header)
    replayed = executor.drive(events)
    recorded_digest = header.get("events_digest")
    replayed_digest = _executor_events_digest(executor)
    digest_match = recorded_digest == replayed_digest
    mismatches: "list[dict[str, Any]]" = []
    for index in range(max(len(recorded), len(replayed))):
        old = recorded[index] if index < len(recorded) else None
        new = replayed[index] if index < len(replayed) else None
        if old == new:
            continue
        diff: "dict[str, Any]" = {"i": index}
        if old is None or new is None:
            diff["recorded"] = old
            diff["replayed"] = new
        else:
            for key in sorted(set(old) | set(new)):
                if old.get(key) != new.get(key):
                    diff.setdefault("fields", {})[key] = {
                        "recorded": old.get(key),
                        "replayed": new.get(key),
                    }
        mismatches.append(diff)
        if len(mismatches) >= 8:
            break
    return {
        "scenario": header["scenario"],
        "instances": len(recorded),
        "replayed": len(replayed),
        "identical": not mismatches and digest_match,
        "mismatches": mismatches,
        "events_digest": {
            "recorded": recorded_digest,
            "replayed": replayed_digest,
            "match": digest_match,
        },
    }


__all__ = [
    "TRACE_VERSION",
    "config_from_dict",
    "config_to_dict",
    "event_from_dict",
    "event_to_dict",
    "executor_from_header",
    "load_trace",
    "record_trace",
    "replay_trace",
    "verify_trace",
]
