"""Shared builders for the resilience suite."""

import numpy as np

from repro.core.histogram_predictor import HistogramPredictor
from repro.core.point import SamplePool


def small_predictor(seed: int = 42) -> HistogramPredictor:
    """A tiny two-plan trained predictor (fast to build and serialize)."""
    pool = SamplePool(2)
    rng = np.random.default_rng(seed)
    for x in rng.uniform(0.0, 0.45, size=(40, 2)):
        pool.add(x, 0, cost=5.0)
    for x in rng.uniform(0.55, 1.0, size=(40, 2)):
        pool.add(x, 1, cost=9.0)
    return HistogramPredictor(
        pool,
        transforms=3,
        radius=0.1,
        confidence_threshold=0.7,
        histogram_kind="incremental",
        seed=seed,
    )


def cold_predictor(dimensions: int = 2, plan_count: int = 2):
    return HistogramPredictor(
        SamplePool(dimensions),
        plan_count=plan_count,
        transforms=3,
        histogram_kind="incremental",
        seed=0,
    )
