"""Unit tests for the ring-buffer time series and the registry sampler."""

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry, RingSeries, TimeSeriesStore
from repro.obs import names as metric_names
from repro.resilience import VirtualClock


class TestRingSeries:
    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ConfigurationError):
            RingSeries(1)

    def test_append_and_points_in_order(self):
        ring = RingSeries(4)
        for t in range(3):
            ring.append(float(t), float(t * 10))
        assert len(ring) == 3
        assert ring.points() == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)]
        assert ring.first() == (0.0, 0.0)
        assert ring.last() == (2.0, 20.0)

    def test_wrap_around_evicts_oldest(self):
        ring = RingSeries(3)
        for t in range(5):
            ring.append(float(t), float(t))
        assert len(ring) == 3
        assert ring.points() == [(2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]
        # Keep wrapping: order is still oldest-first.
        ring.append(5.0, 5.0)
        assert ring.points() == [(3.0, 3.0), (4.0, 4.0), (5.0, 5.0)]

    def test_empty_ring_reads(self):
        ring = RingSeries(2)
        assert ring.points() == []
        assert ring.first() is None
        assert ring.last() is None
        assert ring.value_at_or_before(10.0) is None
        assert ring.window_delta(10.0, 5.0) == 0.0
        assert ring.window_max(10.0, 5.0) is None

    def test_value_at_or_before(self):
        ring = RingSeries(8)
        for t in (1.0, 2.0, 4.0):
            ring.append(t, t * 100)
        assert ring.value_at_or_before(0.5) is None
        assert ring.value_at_or_before(1.0) == 100.0
        assert ring.value_at_or_before(3.0) == 200.0
        assert ring.value_at_or_before(9.0) == 400.0

    def test_window_delta_counts_events_inside_the_window(self):
        ring = RingSeries(16)
        # A counter sampled once a second, +5 events per second.
        for t in range(10):
            ring.append(float(t), float(t * 5))
        assert ring.window_delta(now=9.0, window=4.0) == 20.0
        assert ring.window_delta(now=9.0, window=100.0) == 45.0

    def test_window_delta_degrades_to_since_start(self):
        # Series younger than the window: base falls back to the first
        # retained point, never to zero/garbage.
        ring = RingSeries(4)
        ring.append(100.0, 7.0)
        ring.append(101.0, 9.0)
        assert ring.window_delta(now=101.0, window=3600.0) == 2.0

    def test_window_max_ignores_points_outside_the_window(self):
        ring = RingSeries(8)
        for t, v in ((0.0, 99.0), (5.0, 1.0), (6.0, 3.0), (7.0, 2.0)):
            ring.append(t, v)
        assert ring.window_max(now=7.0, window=2.5) == 3.0
        assert ring.window_max(now=7.0, window=100.0) == 99.0
        assert ring.window_values(now=7.0, window=2.5) == [1.0, 3.0, 2.0]


class TestTimeSeriesStore:
    def _store(self, interval=5.0, capacity=8):
        registry = MetricsRegistry()
        clock = VirtualClock()
        store = TimeSeriesStore(
            registry, clock=clock.now, capacity=capacity, interval=interval
        )
        return registry, clock, store

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ConfigurationError):
            TimeSeriesStore(MetricsRegistry(), interval=0.0)

    def test_maybe_sample_respects_the_interval(self):
        registry, clock, store = self._store(interval=5.0)
        registry.counter("ppc_executions_total", template="Q1").inc()
        assert store.maybe_sample() is True  # first call always samples
        assert store.maybe_sample() is False
        clock.advance(4.9)
        assert store.maybe_sample() is False
        clock.advance(0.1)
        assert store.maybe_sample() is True
        assert store.sample_count == 2

    def test_counter_delta_and_rate_over_a_window(self):
        registry, clock, store = self._store(interval=1.0)
        counter = registry.counter("ppc_executions_total", template="Q1")
        for _ in range(6):
            counter.inc(10)
            store.sample()
            clock.advance(1.0)
        # Samples land at t=0..5 (values 10..60); now is 6.0, so the
        # 3 s window [3, 6] bases on the t=3 sample (value 40).
        now = clock.now()
        delta = store.counter_delta(
            "ppc_executions_total", 3.0, now, template="Q1"
        )
        assert delta == 20.0
        assert store.counter_rate(
            "ppc_executions_total", 3.0, now, template="Q1"
        ) == pytest.approx(20.0 / 3.0)
        # Unknown series reads as zero, not a KeyError.
        assert store.counter_delta("nope", 3.0, now) == 0.0

    def test_histogram_fields_get_their_own_series(self):
        registry, clock, store = self._store(interval=1.0)
        hist = registry.histogram(
            "ppc_stage_seconds", template="Q1", stage="predict"
        )
        hist.observe(0.010)
        store.sample()
        clock.advance(1.0)
        hist.observe(0.030)
        store.sample()
        now = clock.now()
        p95 = store.histogram_field_max(
            "ppc_stage_seconds",
            "p95",
            60.0,
            now,
            template="Q1",
            stage="predict",
        )
        assert p95 is not None and p95 > 0.0
        counts = store.series_points(
            "histogram",
            "ppc_stage_seconds",
            field="count",
            template="Q1",
            stage="predict",
        )
        assert [value for __, value in counts] == [1.0, 2.0]
        with pytest.raises(ConfigurationError):
            store.histogram_field_max("ppc_stage_seconds", "p42", 60.0, now)

    def test_sampling_meters_itself(self):
        registry, __, store = self._store()
        store.sample()
        assert (
            registry.counter_value(metric_names.TELEMETRY_SAMPLES_TOTAL)
            == 1.0
        )
        meter = registry.histogram_summary(
            metric_names.TELEMETRY_SAMPLE_SECONDS
        )
        assert meter["count"] == 1

    def test_to_dict_is_json_ready_and_bounded(self):
        registry, clock, store = self._store(interval=1.0, capacity=4)
        gauge = registry.gauge("ppc_cache_plans", template="Q1")
        for i in range(10):
            gauge.set(float(i))
            store.sample()
            clock.advance(1.0)
        digest = store.to_dict(tail=2)
        assert digest["samples"] == 10
        plans = [
            series
            for series in digest["series"]
            if series["name"] == "ppc_cache_plans"
        ]
        assert len(plans) == 1
        assert plans[0]["kind"] == "gauge"
        assert plans[0]["labels"] == {"template": "Q1"}
        assert len(plans[0]["points"]) == 2  # tail-bounded
        assert plans[0]["points"][-1][1] == 9.0
        stats = store.stats()
        assert stats["samples"] == 10
        assert stats["series"] == len(digest["series"])
