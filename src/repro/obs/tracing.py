"""Span-based decision tracing for the plan-caching predict path.

Every :meth:`TemplateSession.execute <repro.core.framework.TemplateSession.execute>`
asks its :class:`DecisionTracer` for a trace.  Sampled executions get a
:class:`DecisionTrace` — a tree of :class:`Span` nodes covering
normalize → per-transform density lookup → confidence check → noise
elimination → the resilience fallback chain — finished with the
execution's outcome and admitted to a bounded per-template
:class:`FlightRecorder`.  Unsampled executions get the shared
:data:`NOOP_TRACE` singleton whose every method is a no-op, so the hot
path stays O(1) and allocation-free when sampling is off; callers guard
expensive attribute computation behind ``if trace.active:``.

Sampling is deterministic — no RNG draw is consumed, so a traced run
produces bit-identical decisions to an untraced one (see the parity
test).  The sampler admits the first ``head`` executions, every
``interval``-th after that, and an ``error_burst``-sized run after any
degraded/fallback/raised execution; ``explain`` forces a trace.

Traces serialize losslessly: :func:`trace_to_dict` /
:func:`trace_from_dict` round-trip through JSON, and
:func:`dumps_jsonl` / :func:`loads_jsonl` do the same for a recorder's
worth of traces.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator, Mapping, Sequence
from contextlib import contextmanager
from time import perf_counter
from typing import TYPE_CHECKING, Any

import json

from repro.config import TraceConfig
from repro.obs import names
from repro.obs.profiling import ProfileFrame, ProfileTrace, StageProfiler
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.framework import ExecutionRecord

__all__ = [
    "NOOP_TRACE",
    "DecisionTrace",
    "DecisionTracer",
    "FlightRecorder",
    "NoopTrace",
    "Span",
    "dumps_jsonl",
    "loads_jsonl",
    "render_trace",
    "trace_from_dict",
    "trace_to_dict",
]


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays nested in span attributes to plain
    Python values so traces serialize without a numpy dependency."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    # Before the scalar check: np.float64 subclasses float but should
    # leave as a plain Python float.  tolist before item: arrays have
    # both, but item() raises for size > 1.
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (str, bytes, bool, int, float)) or value is None:
        return value
    return str(value)


class Span:
    """One named, timed step of a decision, with nested children.

    ``start`` and ``duration`` are seconds relative to the owning
    trace's origin (``perf_counter`` based — monotonic, not wall-clock).
    ``status`` is ``"ok"`` unless the guarded block raised.
    """

    __slots__ = ("attributes", "children", "duration", "name", "start", "status")

    def __init__(self, name: str, start: float = 0.0) -> None:
        self.name = name
        self.start = start
        self.duration = 0.0
        self.attributes: dict[str, Any] = {}
        self.children: list[Span] = []
        self.status = "ok"

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
        }
        if self.attributes:
            out["attributes"] = _jsonable(self.attributes)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        span = cls(str(payload["name"]), float(payload.get("start", 0.0)))
        span.duration = float(payload.get("duration", 0.0))
        span.status = str(payload.get("status", "ok"))
        span.attributes = dict(payload.get("attributes", {}))
        span.children = [cls.from_dict(c) for c in payload.get("children", ())]
        return span


class _NoopSpan:
    """Stand-in span for unsampled executions: absorbs every call."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class NoopTrace:
    """Shared do-nothing trace handed out when sampling declines.

    ``active`` is False; callers use it to skip attribute computation.
    A single module-level instance (:data:`NOOP_TRACE`) serves every
    unsampled execution, so the disabled path allocates nothing.
    """

    __slots__ = ()

    active = False
    profile: "ProfileFrame | None" = None

    def span(self, name: str, **attributes: Any) -> _NoopSpan:
        return _NOOP_SPAN

    def annotate(self, **attributes: Any) -> None:
        return None


NOOP_TRACE = NoopTrace()


class DecisionTrace:
    """The full story of one cache prediction, as a tree of spans."""

    __slots__ = (
        "_stack",
        "_t0",
        "decision",
        "outcome",
        "point",
        "profile",
        "root",
        "seq",
        "template",
    )

    active = True

    def __init__(
        self,
        template: str,
        seq: int,
        decision: str,
        profile: "ProfileFrame | None" = None,
    ) -> None:
        self.template = template
        self.seq = seq
        self.decision = decision
        self.point: list[float] | None = None
        self.outcome: dict[str, Any] | None = None
        self.profile = profile
        self._t0 = perf_counter()
        self.root = Span("decision")
        self._stack: list[Span] = [self.root]

    # The two methods below are the *only* sanctioned span lifecycle
    # primitives, and RPR009 confines direct calls to this module —
    # everyone else goes through the ``span()`` context manager, which
    # guarantees the close and records error status on exceptions.
    def open_span(self, name: str, **attributes: Any) -> Span:
        span = Span(name, perf_counter() - self._t0)
        if attributes:
            span.attributes.update(attributes)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        if self.profile is not None:
            self.profile.enter(name)
        return span

    def close_span(self) -> None:
        if len(self._stack) > 1:
            span = self._stack.pop()
            span.duration = perf_counter() - self._t0 - span.start
            if self.profile is not None:
                self.profile.exit()

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span for the duration of the ``with`` block."""
        span = self.open_span(name, **attributes)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            self.close_span()

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the innermost open span."""
        self._stack[-1].attributes.update(attributes)

    def finish(self, outcome: Mapping[str, Any]) -> None:
        """Close any spans left open and seal the trace's outcome."""
        while len(self._stack) > 1:
            self.close_span()
        self.root.duration = perf_counter() - self._t0
        self.outcome = dict(outcome)

    @property
    def errored(self) -> bool:
        """True when this execution degraded, fell back, or raised."""
        if self.outcome is None:
            return False
        return bool(
            self.outcome.get("error")
            or self.outcome.get("degraded")
            or self.outcome.get("fallback_source")
        )

    def spans(self, name: str | None = None) -> Iterator[Span]:
        """Depth-first iteration over the span tree (root excluded)."""
        stack = list(reversed(self.root.children))
        while stack:
            span = stack.pop()
            if name is None or span.name == name:
                yield span
            stack.extend(reversed(span.children))

    @property
    def span_count(self) -> int:
        return sum(1 for _ in self.spans())

    def to_dict(self) -> dict[str, Any]:
        return trace_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DecisionTrace":
        return trace_from_dict(payload)


def trace_to_dict(trace: DecisionTrace) -> dict[str, Any]:
    """Serialize a trace to a JSON-ready dict (lossless round-trip)."""
    return {
        "template": trace.template,
        "seq": trace.seq,
        "decision": trace.decision,
        "point": _jsonable(trace.point),
        "outcome": _jsonable(trace.outcome),
        "root": trace.root.to_dict(),
    }


def trace_from_dict(payload: Mapping[str, Any]) -> DecisionTrace:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    trace = DecisionTrace(
        template=str(payload["template"]),
        seq=int(payload["seq"]),
        decision=str(payload.get("decision", "forced")),
    )
    point = payload.get("point")
    trace.point = None if point is None else [float(v) for v in point]
    outcome = payload.get("outcome")
    trace.outcome = None if outcome is None else dict(outcome)
    trace.root = Span.from_dict(payload["root"])
    trace._stack = [trace.root]
    return trace


def dumps_jsonl(traces: Sequence[DecisionTrace]) -> str:
    """Render traces as JSON Lines, one trace per line."""
    return "\n".join(
        json.dumps(trace_to_dict(trace), separators=(",", ":")) for trace in traces
    ) + ("\n" if traces else "")


def loads_jsonl(text: str) -> list[DecisionTrace]:
    """Parse :func:`dumps_jsonl` output back into traces."""
    return [
        trace_from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


class FlightRecorder:
    """Bounded ring buffer of recent decision traces.

    Two buffers: errored traces (degraded / fallback / raised) live in
    their own deque so a burst of healthy traffic cannot evict the
    evidence of an incident.  ``recorded``/``dropped`` count admissions
    and evictions over the recorder's lifetime.
    """

    def __init__(self, capacity: int = 256, error_capacity: int = 64) -> None:
        if capacity < 1 or error_capacity < 1:
            raise ValueError("recorder capacities must be >= 1")
        self._normal: deque[DecisionTrace] = deque(maxlen=capacity)
        self._errors: deque[DecisionTrace] = deque(maxlen=error_capacity)
        self.recorded = 0
        self.dropped = 0

    def admit(self, trace: DecisionTrace) -> int:
        """Store a finished trace; returns how many were evicted."""
        buffer = self._errors if trace.errored else self._normal
        evicted = 1 if len(buffer) == buffer.maxlen else 0
        buffer.append(trace)
        self.recorded += 1
        self.dropped += evicted
        return evicted

    def traces(self) -> list[DecisionTrace]:
        """All retained traces, oldest first (by execution sequence)."""
        return sorted([*self._normal, *self._errors], key=lambda t: t.seq)

    @property
    def occupancy(self) -> int:
        return len(self._normal) + len(self._errors)

    def clear(self) -> None:
        self._normal.clear()
        self._errors.clear()


class DecisionTracer:
    """Per-template sampler + flight recorder for decision traces.

    Owned by one :class:`~repro.core.framework.TemplateSession`;
    ``begin`` is called once per execute and returns either a live
    :class:`DecisionTrace` or :data:`NOOP_TRACE`, ``finish`` seals the
    trace with the execution's outcome and arms the error-bias burst.
    """

    def __init__(
        self,
        template: str,
        config: TraceConfig | None = None,
        metrics: MetricsRegistry | None = None,
        profiler: "StageProfiler | None" = None,
    ) -> None:
        self.template = template
        self.config = config if config is not None else TraceConfig()
        self.profiler = profiler
        self.recorder = FlightRecorder(
            capacity=self.config.capacity,
            error_capacity=self.config.error_capacity,
        )
        self._seq = 0
        self._burst_left = 0
        registry = metrics if metrics is not None else MetricsRegistry()
        self._spans_counter = registry.counter(
            names.TRACE_SPANS_TOTAL, template=template
        )
        self._recorded_counter = registry.counter(
            names.TRACE_RECORDED_TOTAL, template=template
        )
        self._dropped_counter = registry.counter(
            names.TRACE_DROPPED_TOTAL, template=template
        )
        self._sampler_counters = {
            decision: registry.counter(
                names.TRACE_SAMPLER_TOTAL, template=template, decision=decision
            )
            for decision in names.SAMPLER_DECISIONS
        }
        self._sampled = dict.fromkeys(names.SAMPLER_DECISIONS, 0)

    def begin(
        self, force: bool = False
    ) -> "DecisionTrace | ProfileTrace | NoopTrace":
        """Sample this execution; deterministic, consumes no RNG."""
        seq = self._seq
        self._seq += 1
        if force:
            decision = "forced"
        elif not self.config.enabled:
            decision = "skipped"
        elif seq < self.config.head:
            decision = "head"
        elif self._burst_left > 0:
            self._burst_left -= 1
            decision = "error_bias"
        elif self.config.interval and seq % self.config.interval == 0:
            decision = "interval"
        else:
            decision = "skipped"
        self._sampler_counters[decision].inc()
        self._sampled[decision] += 1
        # The profiler samples independently of the tracer (its own
        # deterministic counter), so stage times keep flowing at trace
        # interval 0 — but it never flips ``active``: a profiled,
        # trace-skipped execution behaves exactly like an unsampled one.
        profile = (
            self.profiler.begin(self.template)
            if self.profiler is not None
            else None
        )
        if decision == "skipped":
            if profile is not None:
                return ProfileTrace(profile)
            return NOOP_TRACE
        return DecisionTrace(
            template=self.template, seq=seq, decision=decision, profile=profile
        )

    def finish(
        self,
        trace: "DecisionTrace | ProfileTrace | NoopTrace",
        record: "ExecutionRecord | None" = None,
        error: BaseException | None = None,
    ) -> None:
        """Seal + record a trace; arm the error-bias burst on incident.

        The burst arms even when the incident execution itself was not
        sampled, so the recorder captures the aftermath of every
        degraded/fallback/raised decision.
        """
        incident = error is not None or (
            record is not None and (record.degraded or bool(record.fallback_source))
        )
        if incident and self.config.enabled and self.config.error_burst:
            self._burst_left = max(self._burst_left, self.config.error_burst)
        if not isinstance(trace, DecisionTrace):
            if trace.profile is not None:
                trace.profile.complete()
            return
        if error is not None:
            outcome: dict[str, Any] = {
                "error": f"{type(error).__name__}: {error}",
            }
        elif record is not None:
            outcome = {
                "predicted": record.predicted,
                "confidence": record.confidence,
                "optimizer_invoked": record.optimizer_invoked,
                "invocation_reason": record.invocation_reason,
                "executed_plan": record.executed_plan,
                "execution_cost": record.execution_cost,
                "optimal_plan": record.optimal_plan,
                "optimal_cost": record.optimal_cost,
                "suboptimality": record.suboptimality,
                "drift_triggered": record.drift_triggered,
                "degraded": record.degraded,
                "fallback_source": record.fallback_source,
                "correct": record.correct,
            }
        else:
            outcome = {}
        trace.finish(outcome)
        if trace.profile is not None:
            trace.profile.complete()
        evicted = self.recorder.admit(trace)
        self._recorded_counter.inc()
        if evicted:
            self._dropped_counter.inc(evicted)
        self._spans_counter.inc(trace.span_count)

    def stats(self) -> dict[str, Any]:
        """Recorder + sampler state for ``service.metrics()``."""
        return {
            "enabled": self.config.enabled,
            "occupancy": self.recorder.occupancy,
            "capacity": self.config.capacity,
            "error_capacity": self.config.error_capacity,
            "recorded": self.recorder.recorded,
            "dropped": self.recorder.dropped,
            "sampler": dict(self._sampled),
        }

    def traces(self) -> list[DecisionTrace]:
        return self.recorder.traces()


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_value(v) for v in value) + "]"
    return str(value)


def _format_attributes(attributes: Mapping[str, Any]) -> str:
    return " ".join(f"{key}={_format_value(val)}" for key, val in attributes.items())


def _render_span(span: Span, prefix: str, is_last: bool, lines: list[str]) -> None:
    connector = "└─ " if is_last else "├─ "
    marker = " !" if span.status != "ok" else ""
    attrs = _format_attributes(span.attributes)
    body = f"{span.name}{marker} [{span.duration * 1e3:.3f} ms]"
    if attrs:
        body += f" {attrs}"
    lines.append(prefix + connector + body)
    child_prefix = prefix + ("   " if is_last else "│  ")
    for i, child in enumerate(span.children):
        _render_span(child, child_prefix, i == len(span.children) - 1, lines)


def render_trace(trace: DecisionTrace) -> str:
    """Human-readable span tree for ``repro explain``."""
    lines = [f"trace {trace.template}#{trace.seq} decision={trace.decision}"]
    if trace.point is not None:
        lines.append(f"point: ({', '.join(f'{v:.6g}' for v in trace.point)})")
    for i, child in enumerate(trace.root.children):
        _render_span(child, "", i == len(trace.root.children) - 1, lines)
    outcome = trace.outcome or {}
    if outcome.get("error"):
        lines.append(f"outcome: error {outcome['error']}")
    elif outcome:
        plan = outcome.get("executed_plan")
        optimal = outcome.get("optimal_plan")
        verdict = (
            "optimal"
            if plan == optimal
            else f"suboptimal x{outcome.get('suboptimality', float('nan')):.3f}"
        )
        via = []
        if outcome.get("fallback_source"):
            via.append(f"fallback={outcome['fallback_source']}")
        if outcome.get("degraded"):
            via.append("degraded")
        if outcome.get("optimizer_invoked"):
            via.append(f"optimizer({outcome.get('invocation_reason')})")
        suffix = f" [{' '.join(via)}]" if via else ""
        lines.append(
            f"outcome: plan={plan} optimal={optimal} ({verdict}){suffix}"
        )
    return "\n".join(lines)
