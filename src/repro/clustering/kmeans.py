"""K-MEANS PREDICT (Section III-A, algorithm a).

Sample points are grouped by plan label and each group is clustered
independently into ``c`` clusters with Lloyd's algorithm.  Prediction
returns the plan label of the nearest centroid, or NULL when the
nearest centroid lies beyond the user-specified radius ``d`` — the
distance-based sanity check.

Centroid clustering assumes roughly spherical clusters, which plan
optimality regions are not; the quantitative comparison (Figure 3)
shows exactly that weakness.
"""

from __future__ import annotations

import numpy as np

from repro.core.point import SamplePool
from repro.core.predictor import PlanPredictor, Prediction
from repro.exceptions import ConfigurationError, PredictionError
from repro.rng import as_generator


def lloyd_kmeans(
    points: np.ndarray,
    k: int,
    seed: "int | np.random.Generator | None" = None,
    max_iterations: int = 50,
) -> tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's algorithm.

    Returns ``(centroids (k', dims), assignment (n,))`` where
    ``k' <= k`` (duplicate/empty centroids are dropped).  Initialization
    picks ``k`` distinct input points at random.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ConfigurationError("k-means needs a non-empty 2-D point array")
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    rng = as_generator(seed)
    k = min(k, points.shape[0])
    choice = rng.choice(points.shape[0], size=k, replace=False)
    centroids = points[choice].copy()

    assignment = np.zeros(points.shape[0], dtype=np.int64)
    for __ in range(max_iterations):
        distances = np.linalg.norm(
            points[:, None, :] - centroids[None, :, :], axis=2
        )
        new_assignment = np.argmin(distances, axis=1)
        if (new_assignment == assignment).all() and __ > 0:
            break
        assignment = new_assignment
        for index in range(centroids.shape[0]):
            members = points[assignment == index]
            if members.shape[0]:
                centroids[index] = members.mean(axis=0)

    # Drop centroids that own no points.
    occupied = np.unique(assignment)
    centroids = centroids[occupied]
    remap = {old: new for new, old in enumerate(occupied)}
    assignment = np.array([remap[a] for a in assignment], dtype=np.int64)
    return centroids, assignment


class KMeansPredictor(PlanPredictor):
    """Per-plan k-means clustering with a radius sanity check."""

    def __init__(
        self,
        pool: SamplePool,
        clusters_per_plan: int = 40,
        radius: float = 0.1,
        seed: "int | np.random.Generator | None" = 0,
    ) -> None:
        if len(pool) == 0:
            raise PredictionError("k-means predict needs a non-empty pool")
        if radius <= 0.0:
            raise PredictionError("radius must be > 0")
        self.dimensions = pool.dimensions
        self.radius = radius
        rng = as_generator(seed)

        coords = pool.coords
        plan_ids = pool.plan_ids
        centroid_list = []
        label_list = []
        for plan in np.unique(plan_ids):
            members = coords[plan_ids == plan]
            centroids, __ = lloyd_kmeans(members, clusters_per_plan, rng)
            centroid_list.append(centroids)
            label_list.append(np.full(centroids.shape[0], plan))
        self._centroids = np.vstack(centroid_list)
        self._labels = np.concatenate(label_list)

    def predict(self, x: np.ndarray) -> "Prediction | None":
        x = self._check_point(x)
        distances = np.linalg.norm(self._centroids - x, axis=1)
        nearest = int(np.argmin(distances))
        if distances[nearest] > self.radius:
            return None
        return Prediction(int(self._labels[nearest]), confidence=1.0)

    def space_bytes(self) -> int:
        """Centroid coordinates (float32) plus one plan label each."""
        return self._centroids.shape[0] * (4 * self.dimensions + 4)
