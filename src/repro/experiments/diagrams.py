"""Figures 2, 5, 6 and 7: the illustrative data behind the paper's plots.

These experiments produce the raw material of the paper's qualitative
figures: the plan diagram of a two-parameter template (Figure 2), the
geometry of the randomized transforms (Figure 5), the z-order
linearized per-plan distributions (Figure 6) and a sample
random-trajectories workload (Figure 7).  Each returns printable data;
the plan diagram additionally renders as ASCII art.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.lsh.grid import Grid
from repro.lsh.transforms import PlanSpaceTransform
from repro.lsh.zorder import ZOrderCurve
from repro.tpch import plan_space_for
from repro.workload import RandomTrajectoryWorkload, sample_points

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


@dataclass
class PlanDiagram:
    """A rasterized 2-D plan diagram."""

    template: str
    resolution: int
    cells: np.ndarray  # (resolution, resolution) plan ids
    plan_fractions: dict[int, float]

    def render(self) -> str:
        """ASCII rendering, one glyph per plan, origin bottom-left."""
        lines = []
        for row in range(self.resolution - 1, -1, -1):
            glyphs = [
                _GLYPHS[int(p) % len(_GLYPHS)] for p in self.cells[row]
            ]
            lines.append("".join(glyphs))
        return "\n".join(lines)


def plan_diagram(template: str = "Q1", resolution: int = 48) -> PlanDiagram:
    """Figure 2: rasterize a two-parameter template's plan space."""
    plan_space = plan_space_for(template)
    if plan_space.dimensions != 2:
        raise ConfigurationError(
            "plan diagrams require a two-parameter template"
        )
    axis = (np.arange(resolution) + 0.5) / resolution
    xs, ys = np.meshgrid(axis, axis)
    points = np.column_stack([xs.ravel(), ys.ravel()])
    ids = plan_space.plan_at(points)
    cells = ids.reshape(resolution, resolution)
    unique, counts = np.unique(ids, return_counts=True)
    fractions = {
        int(u): float(c) / ids.size for u, c in zip(unique, counts, strict=True)
    }
    return PlanDiagram(template, resolution, cells, fractions)


@dataclass(frozen=True)
class TransformView:
    """Figure 5: one randomized transform applied to labeled samples."""

    transform_index: int
    projected: np.ndarray  # (n, s)
    cell_ids: np.ndarray  # (n,)
    plan_ids: np.ndarray  # (n,)


def transform_views(
    template: str = "Q1",
    transforms: int = 3,
    samples: int = 500,
    resolution: int = 8,
    seed: int = 7,
) -> list[TransformView]:
    """Project a labeled sample set through several random transforms."""
    plan_space = plan_space_for(template)
    points = sample_points(plan_space.dimensions, samples, seed=seed)
    plan_ids = plan_space.plan_at(points)
    views = []
    for index in range(transforms):
        transform = PlanSpaceTransform(
            plan_space.dimensions, resolution=resolution, seed=seed + index
        )
        projected = transform.apply(points)
        grid = Grid(*transform.output_bounds, resolution)
        views.append(
            TransformView(
                index, projected, grid.cell_ids(projected), plan_ids
            )
        )
    return views


@dataclass(frozen=True)
class ZOrderDistribution:
    """Figure 6: per-plan point distribution along the z-axis."""

    plan_id: int
    z_values: np.ndarray
    interval_count: int


def zorder_distributions(
    template: str = "Q1",
    samples: int = 1000,
    resolution: int = 16,
    seed: int = 7,
) -> list[ZOrderDistribution]:
    """Linearize a labeled sample set; count contiguous z intervals per
    plan (the fragmentation z-ordering introduces)."""
    plan_space = plan_space_for(template)
    points = sample_points(plan_space.dimensions, samples, seed=seed)
    plan_ids = plan_space.plan_at(points)
    transform = PlanSpaceTransform(
        plan_space.dimensions, resolution=resolution, seed=seed
    )
    grid = Grid(*transform.output_bounds, resolution)
    curve = ZOrderCurve(
        transform.output_dims, int(np.log2(resolution))
    )
    z_values = curve.linearize(grid.unit_coords(transform.apply(points)))

    distributions = []
    cell = curve.cell_extent()
    for plan in np.unique(plan_ids):
        zs = np.sort(z_values[plan_ids == plan])
        # Contiguous runs: gaps larger than one cell split intervals.
        intervals = 1 + int((np.diff(zs) > cell * 1.5).sum()) if zs.size else 0
        distributions.append(
            ZOrderDistribution(int(plan), zs, intervals)
        )
    return distributions


def trajectory_sample(
    template: str = "Q1",
    spread: float = 0.02,
    count: int = 1000,
    seed: int = 7,
) -> np.ndarray:
    """Figure 7: one random-trajectories workload over a template."""
    plan_space = plan_space_for(template)
    return RandomTrajectoryWorkload(
        plan_space.dimensions, spread=spread, seed=seed
    ).generate(count)
