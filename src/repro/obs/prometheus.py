"""Prometheus text-exposition rendering of a metrics registry.

Renders counters and gauges one sample per label set, and latency
histograms in the summary style (``quantile`` label plus ``_sum`` and
``_count`` series) so p50/p95/p99 are scrapable directly.  Output
follows the Prometheus text format version 0.0.4; no client library is
involved.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

_QUANTILES = ((0.5, "p50"), (0.95, "p95"), (0.99, "p99"))


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: dict, extra: "dict | None" = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape(str(value))}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (one big string)."""
    snapshot = registry.snapshot()
    lines: list[str] = []

    for name in sorted(snapshot["counters"]):
        lines.append(f"# TYPE {name} counter")
        for sample in snapshot["counters"][name]:
            labels = _format_labels(sample["labels"])
            lines.append(f"{name}{labels} {_format_value(sample['value'])}")

    for name in sorted(snapshot["gauges"]):
        lines.append(f"# TYPE {name} gauge")
        for sample in snapshot["gauges"][name]:
            labels = _format_labels(sample["labels"])
            lines.append(f"{name}{labels} {_format_value(sample['value'])}")

    for name in sorted(snapshot["histograms"]):
        lines.append(f"# TYPE {name} summary")
        for sample in snapshot["histograms"][name]:
            for quantile, key in _QUANTILES:
                labels = _format_labels(
                    sample["labels"], {"quantile": quantile}
                )
                lines.append(f"{name}{labels} {repr(sample[key])}")
            labels = _format_labels(sample["labels"])
            lines.append(f"{name}_sum{labels} {repr(sample['sum'])}")
            lines.append(f"{name}_count{labels} {sample['count']}")

    return "\n".join(lines) + "\n"
