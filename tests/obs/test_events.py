"""Synopsis lifecycle event journal (``repro.obs.events``).

Pins the house invariants the journal shares with the tracer and the
stage profiler: journaled runs are bit-identical to unjournaled ones
(scalar and batch), the disabled path allocates nothing, the ring
rotates under explicit drop accounting, and the JSONL export
round-trips with torn-tail tolerance and tamper detection — the same
envelope discipline as the predictor snapshots and the bench history
journal.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EventsConfig, PPCConfig
from repro.core.framework import TemplateSession
from repro.exceptions import ConfigurationError, PersistenceError
from repro.obs.events import (
    EVENT_KINDS,
    EventJournal,
    export_journal,
    load_journal,
    render_timeline,
    stream_digest,
)
from repro.obs.registry import MetricsRegistry
from repro.tpch import plan_space_for
from repro.workload import RandomTrajectoryWorkload


class FakeClock:
    """Deterministic injected clock ticking 0.0, 1.0, 2.0, ..."""

    def __init__(self) -> None:
        self.now = -1.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


def _hot_config(**overrides) -> PPCConfig:
    return PPCConfig(
        confidence_threshold=0.8,
        mean_invocation_probability=0.05,
        drift_response=False,
        **overrides,
    )


def _journal(capacity: int = 64) -> EventJournal:
    return EventJournal(
        EventsConfig(enabled=True, capacity=capacity), clock=FakeClock()
    )


class TestEventsConfig:
    def test_disabled_by_default(self):
        config = PPCConfig()
        assert config.events.enabled is False
        assert config.events.capacity == 4096

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            EventsConfig(capacity=8)


class TestEmission:
    def test_events_carry_seq_clock_template_trace(self):
        journal = _journal()
        emitter = journal.bind("Q1")
        emitter.set_trace(7)
        event = emitter("point_inserted", plan=2, cost=10.0)
        assert event["seq"] == 0
        assert event["ts"] == 0.0
        assert event["template"] == "Q1"
        assert event["kind"] == "point_inserted"
        assert event["trace"] == 7
        assert event["plan"] == 2
        second = emitter("drift_drop")
        assert second["seq"] == 1
        assert second["ts"] == 1.0

    def test_trace_link_is_per_template(self):
        journal = _journal()
        q1, q2 = journal.bind("Q1"), journal.bind("Q2")
        q1.set_trace(3)
        assert q1("noise_pruned")["trace"] == 3
        assert q2("noise_pruned")["trace"] is None

    def test_filtered_reads(self):
        journal = _journal()
        journal.bind("Q1")("noise_pruned")
        journal.bind("Q2")("drift_drop")
        journal.bind("Q1")("drift_drop")
        assert len(journal.events()) == 3
        assert len(journal.events(template="Q1")) == 2
        assert len(journal.events(kind="drift_drop")) == 2
        assert len(journal.events(template="Q2", kind="drift_drop")) == 1

    def test_stats_accounting(self):
        journal = _journal()
        emitter = journal.bind("Q1")
        for __ in range(3):
            emitter("point_inserted", plan=0)
        emitter("drift_drop")
        stats = journal.stats()
        assert stats["emitted"] == 4
        assert stats["dropped"] == 0
        assert stats["occupancy"] == 4
        assert stats["by_kind"] == {"point_inserted": 3, "drift_drop": 1}
        assert stats["templates"]["Q1"]["point_inserted"] == 3

    def test_metrics_binding_publishes_counts(self):
        registry = MetricsRegistry()
        journal = _journal(capacity=64)
        journal.bind_metrics(registry)
        emitter = journal.bind("Q1")
        for __ in range(70):
            emitter("noise_pruned")
        assert (
            registry.counter_value(
                "ppc_events_emitted_total",
                template="Q1",
                kind="noise_pruned",
            )
            == 70
        )
        assert registry.counter_value("ppc_events_dropped_total") == 6
        assert registry.gauge_value("ppc_events_occupancy") == 64.0


class TestRingRotation:
    def test_ring_drops_oldest_not_silently(self):
        journal = _journal(capacity=64)
        emitter = journal.bind("Q1")
        for index in range(100):
            emitter("point_inserted", plan=index)
        resident = journal.events()
        assert len(resident) == 64
        assert journal.dropped == 36
        assert journal.emitted == 100
        assert resident[0]["seq"] == 36  # the oldest 36 rotated out
        assert resident[-1]["seq"] == 99

    def test_digest_covers_rotated_events(self):
        # Two journals, same stream, different capacities: the running
        # digest is capacity-independent even though the small ring
        # rotated most of its events out.
        small, large = _journal(capacity=64), _journal(capacity=4096)
        for index in range(200):
            small.bind("Q1")("point_inserted", plan=index % 3)
            large.bind("Q1")("point_inserted", plan=index % 3)
        assert small.dropped > 0 and large.dropped == 0
        assert small.digest() == large.digest()
        assert small.digest() == stream_digest(large.events())

    @given(
        capacity=st.integers(min_value=64, max_value=256),
        emits=st.integers(min_value=0, max_value=600),
    )
    @settings(max_examples=60, deadline=None)
    def test_rotation_accounting_invariants(self, capacity, emits):
        journal = _journal(capacity=capacity)
        emitter = journal.bind("Q1")
        for index in range(emits):
            emitter("point_inserted", plan=index)
        resident = journal.events()
        # Conservation: everything emitted is either resident or
        # explicitly accounted as dropped.
        assert journal.emitted == emits
        assert len(resident) == min(emits, capacity)
        assert journal.dropped == max(0, emits - capacity)
        assert journal.dropped + len(resident) == emits
        # The survivors are exactly the newest suffix, in seq order.
        seqs = [event["seq"] for event in resident]
        assert seqs == list(range(max(0, emits - capacity), emits))
        assert journal.stats()["next_seq"] == emits


class TestLockstepParity:
    """Journaled decisions == unjournaled decisions, bit for bit."""

    FIELDS = (
        "predicted",
        "confidence",
        "optimizer_invoked",
        "invocation_reason",
        "executed_plan",
        "execution_cost",
        "optimal_plan",
        "optimal_cost",
    )

    def _sessions(self):
        plain = TemplateSession(
            plan_space_for("Q1"), _hot_config(), seed=17
        )
        journaled = TemplateSession(
            plan_space_for("Q1"),
            _hot_config(events=EventsConfig(enabled=True)),
            seed=17,
        )
        return plain, journaled

    def test_scalar_decisions_are_bit_identical(self):
        plain, journaled = self._sessions()
        workload = RandomTrajectoryWorkload(
            2, spread=0.02, seed=5
        ).generate(300)
        for x in workload:
            plain.execute(x)
            journaled.execute(x)
        assert journaled.events is not None
        assert journaled.events.emitted > 0
        for left, right in zip(plain.records, journaled.records):
            for field in self.FIELDS:
                assert getattr(left, field) == getattr(right, field)

    def test_batch_decisions_are_bit_identical(self):
        plain, journaled = self._sessions()
        warm = RandomTrajectoryWorkload(2, spread=0.02, seed=5).generate(
            100
        )
        for x in warm:
            plain.execute(x)
            journaled.execute(x)
        probes = RandomTrajectoryWorkload(
            2, spread=0.02, seed=6
        ).generate(200)
        plain.execute_batch(probes)
        journaled.execute_batch(probes)
        for left, right in zip(plain.records, journaled.records):
            for field in self.FIELDS:
                assert getattr(left, field) == getattr(right, field)


class TestDisabledIsFree:
    def test_disabled_session_owns_no_journal(self):
        session = TemplateSession(
            plan_space_for("Q1"), _hot_config(), seed=17
        )
        assert session.events is None
        assert session._events is None
        assert session.online.predictor._events is None
        assert session.cache._events is None
        for x in RandomTrajectoryWorkload(2, seed=5).generate(50):
            session.execute(x)
        assert session.events is None


class TestExportRoundTrip:
    def _stream(self, count: int = 40) -> list:
        journal = _journal(capacity=4096)
        emitter = journal.bind("Q1")
        for index in range(count):
            emitter("point_inserted", plan=index % 3, cost=float(index))
        return journal.events()

    def test_round_trip_preserves_events_and_digest(self, tmp_path):
        stream = self._stream()
        path = tmp_path / "journal.jsonl"
        assert export_journal(stream, path) == len(stream)
        loaded, torn = load_journal(path)
        assert not torn
        assert loaded == stream
        assert stream_digest(loaded) == stream_digest(stream)

    def test_empty_export_writes_nothing(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        assert export_journal([], path) == 0
        assert not path.exists()

    def test_torn_tail_is_tolerated(self, tmp_path):
        stream = self._stream()
        path = tmp_path / "journal.jsonl"
        export_journal(stream, path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 999, "tr')  # crash mid-append
        loaded, torn = load_journal(path)
        assert torn
        assert loaded == stream

    def test_mid_file_corruption_is_rejected(self, tmp_path):
        stream = self._stream()
        path = tmp_path / "journal.jsonl"
        export_journal(stream, path)
        lines = path.read_text().splitlines()
        lines[len(lines) // 2] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(PersistenceError, match="not valid JSON"):
            load_journal(path)

    def test_tampered_field_is_rejected(self, tmp_path):
        stream = self._stream()
        path = tmp_path / "journal.jsonl"
        export_journal(stream, path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[3])
        record["plan"] = 99  # rewrite history, keep the old crc
        lines[3] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(PersistenceError, match="checksum mismatch"):
            load_journal(path)

    def test_missing_checksum_is_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"seq": 0, "kind": "drift_drop"}\n' * 2)
        with pytest.raises(PersistenceError, match="no checksum"):
            load_journal(path)

    def test_missing_file_is_a_persistence_error(self, tmp_path):
        with pytest.raises(PersistenceError, match="cannot read"):
            load_journal(tmp_path / "absent.jsonl")


class TestRenderTimeline:
    def test_empty_stream(self):
        assert "no lifecycle events" in render_timeline([])

    def test_rows_carry_seq_kind_and_trace_link(self):
        journal = _journal()
        emitter = journal.bind("Q1")
        emitter.set_trace(4)
        emitter("point_inserted", plan=1, cost=2.5)
        text = render_timeline(journal.events())
        assert "point_inserted" in text
        assert "plan=1" in text
        assert "cost=2.5000" in text
        assert "[trace 4]" in text

    def test_limit_keeps_newest(self):
        journal = _journal()
        emitter = journal.bind("Q1")
        for index in range(10):
            emitter("noise_pruned", plan=index)
        text = render_timeline(journal.events(), limit=3)
        assert text.count("\n") == 2
        assert "plan=9" in text and "plan=0" not in text


class TestFrameworkIntegration:
    def test_emitted_kinds_are_inventory_kinds(self):
        session = TemplateSession(
            plan_space_for("Q1"),
            _hot_config(events=EventsConfig(enabled=True)),
            seed=17,
        )
        for x in RandomTrajectoryWorkload(2, spread=0.02, seed=5).generate(
            200
        ):
            session.execute(x)
        kinds = {event["kind"] for event in session.events.events()}
        assert kinds
        assert kinds <= set(EVENT_KINDS)

    def test_drift_emits_drop_then_rebuild(self):
        # A real drift response journals the pre-reset monitor scores
        # and the histogram rebuild, in stream order.  Same hair-trigger
        # rig as tests/core/test_framework.py: teach the predictor lies
        # so negative feedback collapses the precision estimate.
        space = plan_space_for("Q1")
        session = TemplateSession(
            space,
            PPCConfig(
                confidence_threshold=0.3,
                mean_invocation_probability=0.0,
                negative_feedback=True,
                drift_response=True,
                drift_threshold=0.99,
                drift_min_observations=5,
                monitor_window=10,
                events=EventsConfig(enabled=True),
            ),
            seed=0,
        )
        x = np.array([0.5, 0.5])
        true_plan = int(space.plan_at(x[None, :])[0])
        wrong_plan = (true_plan + 1) % space.plan_count
        for __ in range(12):
            session.online.observe(x, wrong_plan, cost=1.0)
        fired = False
        for __ in range(30):
            if session.execute(x).drift_triggered:
                fired = True
                break
        assert fired
        drops = session.events.events(kind="drift_drop")
        assert drops
        drop = drops[0]
        assert 0.0 <= drop["precision"] <= 1.0
        assert drop["cached_plans"] >= 0
        assert drop["points_held"] > 0
        rebuilds = session.events.events(kind="histogram_rebuilt")
        assert rebuilds and rebuilds[0]["seq"] > drop["seq"]
        # Every optimizer invocation landed its provenance on the
        # corresponding synopsis insert.
        reasons = {
            event.get("provenance")
            for event in session.events.events(kind="point_inserted")
        }
        assert "cache_miss" in reasons
