"""Figure 3: k-means predict vs single-linkage predict vs density predict.

Reproduces the Section III quantitative comparison: precision (and
recall) per radius for k-means (c = 40), single linkage, and density at
gamma in {0.5, 0.75, 0.95}.  Paper shape: density predict achieves the
highest precision, with gamma trading recall for precision; k-means is
the weakest and degrades as the radius grows.
"""

from _bench_utils import write_result
from repro.clustering import DensityPredictor
from repro.experiments.comparison import run_clustering_comparison
from repro.tpch import plan_space_for
from repro.workload import sample_labeled_pool, sample_points


def test_fig03_clustering_comparison(benchmark):
    rows = run_clustering_comparison(
        template="Q1",
        repeats=5,
        sample_size=1000,
        test_size=1000,
        radii=(0.025, 0.05, 0.1, 0.15, 0.2),
        seed=7,
    )
    lines = [
        "Figure 3 — precision/recall of candidate clustering methods (Q1,",
        "|X| = 1000, 1000 test points, 5 repeats, c = 40)",
        "",
        f"{'algorithm':20s} {'d':>6s} {'precision':>10s} {'recall':>8s}",
    ]
    for row in rows:
        lines.append(
            f"{row.algorithm:20s} {row.radius:6.3f} "
            f"{row.precision:10.3f} {row.recall:8.3f}"
        )
    write_result("fig03_clustering_comparison", lines)

    by_algorithm: dict[str, list[float]] = {}
    for row in rows:
        by_algorithm.setdefault(row.algorithm, []).append(row.precision)
    mean = {k: sum(v) / len(v) for k, v in by_algorithm.items()}
    # Paper shape: density (high gamma) > single-linkage and > k-means.
    assert mean["density(g=0.95)"] >= mean["k-means(c=40)"]
    assert mean["density(g=0.95)"] >= mean["single-linkage"] - 0.02

    # Time one density prediction over the standard pool.
    space = plan_space_for("Q1")
    pool = sample_labeled_pool(space, 1000, seed=1)
    predictor = DensityPredictor(pool, radius=0.1)
    point = sample_points(2, 1, seed=2)[0]
    benchmark(predictor.predict, point)
